(* Trusted-service replication engine (paper, Section 5).

   A trusted application is a deterministic state machine replicated on
   all servers.  Client requests are delivered by atomic broadcast
   (plain services) or secure causal atomic broadcast (services whose
   requests must stay confidential until ordered, like the notary); each
   server executes the agreed sequence and returns a partial answer
   containing a threshold-signature share, so the client assembles a
   single service signature under the service's one public key — clients
   never need to know individual servers.

   A client sends its request to all servers (sending to more than t is
   required so corrupted servers cannot simply swallow it) and waits for
   matching answers from a set that surely contains an honest server,
   combining signature shares until the service signature verifies. *)

module AS = Adversary_structure

type mode = Plain | Confidential

type engine_msg = Abc_m of Abc.msg | Scabc_m of Scabc.msg

type msg =
  | Engine of engine_msg
  | Request of { client : int; body : string }
  | Response of {
      req_digest : string;
      server : int;
      response : string;
      share : Keyring.sig_share;
    }

type engine = Abc_e of Abc.t | Scabc_e of Scabc.t

type t = {
  me : int;
  keyring : Keyring.t;
  obs : Obs.t;
  sim_send : int -> msg -> unit;  (* may address clients, i.e. slots >= n *)
  mutable engine : engine option;
  execute : string -> string;  (* the replicated application *)
  mutable executed : int;  (* number of requests executed, for tests *)
  seen : (int * string, string) Hashtbl.t;
      (* (client, nonce) -> cached response: executed-request dedup *)
  mutable dup_suppressed : int;
}

(* Ordered-and-decrypted request: "client_id | nonce | body".  The nonce
   makes retries and repeated queries distinct payloads for the atomic
   broadcast (which de-duplicates by content). *)
let parse_request (payload : string) : (int * string * string) option =
  match Codec.decode payload with
  | Some [ client; nonce; body ] ->
    (match int_of_string_opt client with
    | Some c when c >= 0 -> Some (c, nonce, body)
    | Some _ | None -> None)
  | Some _ | None -> None

let response_statement ~req_digest ~response =
  Ro.encode [ "service-response"; req_digest; response ]

(* The atomic broadcast deduplicates by *content*, which is not the same
   thing as deduplicating by *request*: under the confidential engine a
   corrupted server can re-encrypt a captured request under fresh TDH2
   randomness, and the distinct ciphertext sails through the content
   check only to decrypt to the same (client, nonce, body).  Executing
   it again is the replay the nonce exists to prevent, so execution
   dedups on (client, nonce): a duplicate is counted
   ([service_dup_suppressed]), skips the state machine, and re-answers
   from the cached response — an honest client retry still gets its
   signature shares. *)
let on_ordered (t : t) (payload : string) =
  match parse_request payload with
  | None -> ()  (* malformed request: executed as a no-op *)
  | Some (client, nonce, body) ->
    let response =
      match Hashtbl.find_opt t.seen (client, nonce) with
      | Some cached ->
        t.dup_suppressed <- t.dup_suppressed + 1;
        if Obs.active t.obs then
          Obs.incr t.obs
            ~labels:[ ("layer", "service") ]
            "service_dup_suppressed";
        cached
      | None ->
        let response = t.execute body in
        t.executed <- t.executed + 1;
        Hashtbl.replace t.seen (client, nonce) response;
        response
    in
    let req_digest = Sha256.digest payload in
    let share =
      Keyring.service_sign_share t.keyring ~party:t.me
        (response_statement ~req_digest ~response)
    in
    t.sim_send client
      (Response { req_digest; server = t.me; response; share })

(* Feed one ordered request directly into the execution path — what the
   engine's deliver callback does; exposed for dedup tests. *)
let deliver_ordered = on_ordered

let handle (t : t) ~src msg =
  match (msg, t.engine) with
  | Engine (Abc_m m), Some (Abc_e abc) -> Abc.handle abc ~src m
  | Engine (Scabc_m m), Some (Scabc_e sc) -> Scabc.handle sc ~src m
  | Request { client = _; body }, Some (Abc_e abc) ->
    (* Plain service: the body is the client-wrapped request
       "client_id | payload"; order it as-is. *)
    Abc.broadcast abc body
  | Request { client = _; body }, Some (Scabc_e sc) ->
    (* Confidential service: the body is a TDH2 ciphertext of the
       wrapped request; order it as-is. *)
    Scabc.broadcast sc body
  | Response _, _ -> ()  (* servers ignore stray client-bound answers *)
  | (Engine _ | Request _), _ -> ()

let deploy ~(sim : msg Sim.t) ~(keyring : Keyring.t) ~(mode : mode)
    ~(make_app : unit -> string -> string) () : t array =
  let n = Sim.n sim in
  let nodes =
    Array.init n (fun me ->
        { me;
          keyring;
          obs = Sim.obs sim;
          sim_send = (fun dst m -> Sim.send sim ~src:me ~dst m);
          engine = None;
          execute = make_app ();
          executed = 0;
          seen = Hashtbl.create 16;
          dup_suppressed = 0 })
  in
  Array.iteri
    (fun me node ->
      let io =
        Proto_io.make ~obs:(Sim.obs sim) ~layer:"service" ~me ~keyring
          ~send:(fun dst m -> Sim.send sim ~src:me ~dst (Engine m))
          ~broadcast:(fun m -> Sim.broadcast sim ~src:me (Engine m))
          ()
      in
      (match mode with
      | Plain ->
        let abc =
          Abc.create
            ~io:
              (Proto_io.embed ~layer:"abc" ~bytes:(Abc.msg_size keyring) io
                 ~wrap:(fun m -> Abc_m m))
            ~tag:"service" ~deliver:(fun p -> on_ordered node p) ()
        in
        node.engine <- Some (Abc_e abc)
      | Confidential ->
        let sc =
          Scabc.create
            ~io:
              (Proto_io.embed ~layer:"scabc" ~bytes:(Scabc.msg_size keyring)
                 io
                 ~wrap:(fun m -> Scabc_m m))
            ~tag:"service"
            ~deliver:(fun ~label:_ p -> on_ordered node p)
            ()
        in
        node.engine <- Some (Scabc_e sc));
      Sim.set_handler sim me (fun ~src m -> handle node ~src m))
    nodes;
  nodes

(* ---------------- client side -------------------------------------- *)

module Client = struct
  type pending = {
    mutable by_response : (string * (int * Keyring.sig_share) list) list;
    mutable result : (string * Keyring.service_signature) option;
  }

  type c = {
    slot : int;  (* this client's simulator slot (>= n) *)
    keyring : Keyring.t;
    rng : Prng.t;
    sim : msg Sim.t;
    requests : (string, pending * (string -> Keyring.service_signature -> unit)) Hashtbl.t;
  }

  let create ~(sim : msg Sim.t) ~(keyring : Keyring.t) ~slot ~seed : c =
    let c =
      { slot; keyring; rng = Prng.create ~seed; sim; requests = Hashtbl.create 4 }
    in
    Sim.set_handler sim slot (fun ~src m ->
        match m with
        | Response { req_digest; server; response; share }
          when src = server && server >= 0 && server < Sim.n sim -> (
          match Hashtbl.find_opt c.requests req_digest with
          | None -> ()
          | Some (p, callback) ->
            if p.result = None then begin
              let stmt = response_statement ~req_digest ~response in
              if Keyring.service_verify_share keyring ~party:server stmt share
              then begin
                let group =
                  match List.assoc_opt response p.by_response with
                  | Some g -> g
                  | None -> []
                in
                if not (List.mem_assoc server group) then begin
                  let group = (server, share) :: group in
                  p.by_response <-
                    (response, group)
                    :: List.remove_assoc response p.by_response;
                  (* Try to assemble the service signature: succeeds once
                     the responders form a sharing-qualified set. *)
                  match
                    Keyring.service_combine keyring stmt (List.map snd group)
                  with
                  | Some service_sig
                    when Keyring.service_verify keyring stmt service_sig ->
                    p.result <- Some (response, service_sig);
                    callback response service_sig
                  | Some _ | None -> ()
                end
              end
            end)
        | Response _ | Engine _ | Request _ -> ());
    c

  (* Send [body] to every server; [callback] fires once with the agreed
     response and the combined service signature. *)
  let request (c : c) ~(mode : mode) (body : string)
      (callback : string -> Keyring.service_signature -> unit) : unit =
    let nonce = Prng.bytes c.rng 8 in
    let wrapped = Codec.encode [ string_of_int c.slot; nonce; body ] in
    let on_wire =
      match mode with
      | Plain -> wrapped
      | Confidential ->
        Scabc.encrypt_request c.keyring c.rng
          ~label:(string_of_int c.slot) wrapped
    in
    (* Servers hash the *ordered plaintext*, which in both modes is the
       wrapped request. *)
    let req_digest = Sha256.digest wrapped in
    Hashtbl.replace c.requests req_digest
      ({ by_response = []; result = None }, callback);
    for dst = 0 to Sim.n c.sim - 1 do
      Sim.send c.sim ~src:c.slot ~dst (Request { client = c.slot; body = on_wire })
    done
end

let msg_size kr = function
  | Engine (Abc_m m) -> 8 + Abc.msg_size kr m
  | Engine (Scabc_m m) -> 8 + Scabc.msg_size kr m
  | Request { body; _ } -> 16 + String.length body
  | Response { response; _ } -> 300 + String.length response
