(* Trusted-service replication engine and client protocol (paper,
   Section 5).

   A trusted application is a deterministic state machine replicated on
   all servers.  Client requests are delivered by atomic broadcast
   (plain services) or secure causal atomic broadcast (services whose
   requests must stay confidential until ordered, like the notary); each
   server executes the agreed sequence and returns a partial answer
   containing a threshold-signature share, so the client assembles a
   single service signature under the service's one public key — clients
   never need to know individual servers.

   A client sends its request to all servers (sending to more than t is
   required so corrupted servers cannot simply swallow it) and waits for
   matching answers from a set that surely contains an honest server,
   combining signature shares until the service signature verifies.  The
   assembled (digest, response, signature) triple is a *reply
   certificate*: transferable evidence of the service's answer that any
   third party can check against the service public key.

   Read-only requests additionally have a fast path that skips agreement
   entirely: the client sends a [Query] to every replica, each replica
   answers directly from its current state with a share over a distinct
   statement domain, and the client accepts on t+1 matching answers.
   The two domains never mix — a fast certificate is honest evidence
   that some honest replica answered this at one of its serialized
   states, but it asserts nothing about ordering, which is exactly why
   replicas refuse the fast path for anything that mutates state. *)

module AS = Adversary_structure

type mode = Plain | Confidential

type engine_msg =
  | Abc_m of Abc.msg
  | Scabc_m of Scabc.msg
  | Recov_m of Recovery.msg

type msg =
  | Engine of engine_msg
  | Request of { client : int; body : string }
      (** body: the SVQ1 request frame ([Plain]) or its TDH2 ciphertext
          ([Confidential]) *)
  | Query of { client : int; body : string }
      (** read-only fast path; body: an SVQ1 frame, always plaintext *)
  | Response of string  (** an SVR1 reply frame *)

type engine = Abc_e of Abc.t | Scabc_e of Scabc.t | Recov_e of Recovery.t

type t = {
  me : int;
  keyring : Keyring.t;
  obs : Obs.t;
  sim_send : int -> msg -> unit;  (* may address clients, i.e. slots >= n *)
  mutable engine : engine option;
  execute : string -> string;  (* the replicated application *)
  read_only : string -> bool;  (* fast-path admission predicate *)
  mutable ordered : int;  (* well-formed ordered requests seen *)
  mutable executed : int;  (* requests that reached the state machine *)
  mutable malformed : int;  (* ordered payloads that failed to parse *)
  seen : (int * string, string) Hashtbl.t;
      (* (client, nonce) -> cached response: executed-request dedup *)
  mutable dup_suppressed : int;
  mutable queries_served : int;
  mutable queries_refused : int;
}

let svc_labels = [ ("layer", "service") ]

(* Ordered-and-decrypted request: the strict SVQ1 frame (client slot,
   nonce, body).  The nonce makes retries and repeated queries distinct
   payloads for the atomic broadcast (which de-duplicates by content)
   and keys execution dedup, so the decoder rejects an empty nonce: with
   one, every request of a client would collapse onto a single dedup
   slot and all but the first would be answered from the cache. *)
let parse_request (payload : string) : (int * string * string) option =
  Codec.decode_svc_request payload

let response_statement ~req_digest ~response =
  Ro.encode [ "service-response"; req_digest; response ]

(* Fast-path answers sign a distinct domain, so a direct (unordered)
   reply can never be passed off as an ordered one or vice versa. *)
let query_statement ~req_digest ~response =
  Ro.encode [ "service-query"; req_digest; response ]

let reply_statement ~fast ~req_digest ~response =
  if fast then query_statement ~req_digest ~response
  else response_statement ~req_digest ~response

(* ---------------- reply certificates -------------------------------- *)

type reply_cert = {
  rc_fast : bool;  (* assembled on the fast path (query domain) *)
  rc_req_digest : string;  (* SHA-256 of the ordered plaintext frame *)
  rc_response : string;
  rc_sig : Keyring.service_signature;
}

let verify_reply_cert kr (rc : reply_cert) : bool =
  Keyring.service_verify kr
    (reply_statement ~fast:rc.rc_fast ~req_digest:rc.rc_req_digest
       ~response:rc.rc_response)
    rc.rc_sig

let reply_cert_to_bytes kr (rc : reply_cert) : string =
  Codec.encode_reply_cert ~fast:rc.rc_fast ~req_digest:rc.rc_req_digest
    ~response:rc.rc_response
    ~cert:(Keyring.service_signature_to_bytes kr rc.rc_sig)

let reply_cert_of_bytes kr (b : string) : reply_cert option =
  match Codec.decode_reply_cert b with
  | None -> None
  | Some (fast, req_digest, response, certb) ->
    Option.map
      (fun s ->
        { rc_fast = fast;
          rc_req_digest = req_digest;
          rc_response = response;
          rc_sig = s })
      (Keyring.service_signature_of_bytes kr certb)

(* ---------------- server side --------------------------------------- *)

let send_reply (t : t) ~fast ~client ~req_digest ~response =
  let share =
    Keyring.service_sign_share t.keyring ~party:t.me
      (reply_statement ~fast ~req_digest ~response)
  in
  t.sim_send client
    (Response
       (Codec.encode_svc_reply ~fast ~req_digest ~server:t.me ~response
          ~share:(Keyring.sig_share_to_bytes t.keyring share)))

(* The atomic broadcast deduplicates by *content*, which is not the same
   thing as deduplicating by *request*: under the confidential engine a
   corrupted server can re-encrypt a captured request under fresh TDH2
   randomness, and the distinct ciphertext sails through the content
   check only to decrypt to the same (client, nonce, body); under drop
   chaos an honest client resend can itself be ordered twice.  Executing
   again is the replay the nonce exists to prevent, so execution dedups
   on (client, nonce): a duplicate is counted ([service_dup_suppressed]),
   skips the state machine, and re-answers from the cached response — an
   honest client retry still gets its signature shares. *)
let on_ordered (t : t) (payload : string) =
  match parse_request payload with
  | None ->
    (* malformed request (bad frame or empty nonce): a no-op *)
    t.malformed <- t.malformed + 1;
    if Obs.active t.obs then
      Obs.incr t.obs ~labels:svc_labels "service_malformed"
  | Some (client, nonce, body) ->
    t.ordered <- t.ordered + 1;
    let response =
      match Hashtbl.find_opt t.seen (client, nonce) with
      | Some cached ->
        t.dup_suppressed <- t.dup_suppressed + 1;
        if Obs.active t.obs then
          Obs.incr t.obs ~labels:svc_labels "service_dup_suppressed";
        cached
      | None ->
        let response = t.execute body in
        t.executed <- t.executed + 1;
        Hashtbl.replace t.seen (client, nonce) response;
        response
    in
    send_reply t ~fast:false ~client ~req_digest:(Sha256.digest payload)
      ~response

(* Feed one ordered request directly into the execution path — what the
   engine's deliver callback does; exposed for dedup tests. *)
let deliver_ordered = on_ordered

(* Fast path: answer a read-only query directly from current state,
   skipping agreement, dedup and the execution counter (queries never
   mutate, so replays are harmless).  The admission predicate is the
   soundness gate — anything it rejects must take the ordered path. *)
let on_query (t : t) ~client body =
  let refused () =
    t.queries_refused <- t.queries_refused + 1;
    if Obs.active t.obs then
      Obs.incr t.obs ~labels:svc_labels "service_query_refused"
  in
  match Codec.decode_svc_request body with
  | Some (qc, _nonce, inner) when qc = client && t.read_only inner ->
    let response = t.execute inner in
    t.queries_served <- t.queries_served + 1;
    if Obs.active t.obs then
      Obs.incr t.obs ~labels:svc_labels "service_query_served";
    send_reply t ~fast:true ~client ~req_digest:(Sha256.digest body)
      ~response
  | Some _ | None -> refused ()

let handle (t : t) ~src msg =
  match (msg, t.engine) with
  | Engine (Abc_m m), Some (Abc_e abc) -> Abc.handle abc ~src m
  | Engine (Scabc_m m), Some (Scabc_e sc) -> Scabc.handle sc ~src m
  | Engine (Recov_m m), Some (Recov_e r) -> Recovery.handle r ~src m
  | Request { client = _; body }, Some (Abc_e abc) ->
    (* Plain service: the body is the client's SVQ1 frame; order as-is. *)
    Abc.broadcast abc body
  | Request { client = _; body }, Some (Recov_e r) ->
    Recovery.submit r body
  | Request { client = _; body }, Some (Scabc_e sc) ->
    (* Confidential service: the body is a TDH2 ciphertext of the
       frame; order it as-is. *)
    Scabc.broadcast sc body
  | Query { client; body }, Some _ -> on_query t ~client body
  | Response _, _ -> ()  (* servers ignore stray client-bound answers *)
  | (Engine _ | Request _ | Query _), _ -> ()

(* ---------------- deployment ---------------------------------------- *)

type deployment = {
  d_sim : msg Link.frame Sim.t;
  d_keyring : Keyring.t;
  d_mode : mode;
  d_policy : Abc.policy option;
  d_link : Link.policy option;
  d_interval : int;  (* checkpoint interval; 0 = plain Abc engine *)
  d_retry : float;
  d_read_only : string -> bool;
  d_make_app : unit -> string -> string;
  d_wrap : (int -> msg Sim.handler -> msg Sim.handler) option;
  mutable d_nodes : t array;
}

let nodes d = d.d_nodes

let msg_size kr = function
  | Engine (Abc_m m) -> 8 + Abc.msg_size kr m
  | Engine (Scabc_m m) -> 8 + Scabc.msg_size kr m
  | Engine (Recov_m m) -> 8 + Recovery.msg_size kr m
  | Request { body; _ } | Query { body; _ } -> 16 + String.length body
  | Response frame -> 8 + String.length frame

(* Instantiate and wire one party: mirrors [Recovery.wire]'s two arms
   (link-off Raw passthrough / link-on ARQ endpoint).  Client-bound
   responses are always Raw — clients run no link machinery; their loss
   recovery is request resend against execution dedup. *)
let wire d ~wrapped me =
  let sim = d.d_sim and keyring = d.d_keyring in
  let timer ~delay cb = Sim.set_timer sim me ~delay cb in
  let make_io ~send ~broadcast =
    Proto_io.make ~obs:(Sim.obs sim) ~layer:"service"
      ~bytes:(msg_size keyring) ~timer ~me ~keyring ~send ~broadcast ()
  in
  let make_node io =
    let node =
      { me;
        keyring;
        obs = Sim.obs sim;
        sim_send = (fun dst m -> Sim.send sim ~src:me ~dst (Link.Raw m));
        engine = None;
        execute = d.d_make_app ();
        read_only = d.d_read_only;
        ordered = 0;
        executed = 0;
        malformed = 0;
        seen = Hashtbl.create 16;
        dup_suppressed = 0;
        queries_served = 0;
        queries_refused = 0 }
    in
    (match d.d_mode with
    | Plain when d.d_interval > 0 ->
      let r =
        Recovery.create ?policy:d.d_policy ~interval:d.d_interval
          ~retry:d.d_retry
          ~io:
            (Proto_io.embed ~layer:"recov"
               ~bytes:(Recovery.msg_size keyring) io
               ~wrap:(fun m -> Engine (Recov_m m)))
          ~tag:"service"
          ~deliver:(fun p -> on_ordered node p)
          ()
      in
      node.engine <- Some (Recov_e r)
    | Plain ->
      let abc =
        Abc.create ?policy:d.d_policy
          ~io:
            (Proto_io.embed ~layer:"abc" ~bytes:(Abc.msg_size keyring) io
               ~wrap:(fun m -> Engine (Abc_m m)))
          ~tag:"service"
          ~deliver:(fun p -> on_ordered node p)
          ()
      in
      node.engine <- Some (Abc_e abc)
    | Confidential ->
      let sc =
        Scabc.create ?policy:d.d_policy
          ~io:
            (Proto_io.embed ~layer:"scabc" ~bytes:(Scabc.msg_size keyring)
               io
               ~wrap:(fun m -> Engine (Scabc_m m)))
          ~tag:"service"
          ~deliver:(fun ~label:_ p -> on_ordered node p)
          ()
      in
      node.engine <- Some (Scabc_e sc));
    node
  in
  let install node ep =
    (* Recovery's Fetch/State traffic is raw and unsequenced: the
       fetcher's link state is gone, so catch-up cannot ride the ARQ
       channel it is trying to resynchronize. *)
    (match node.engine with
    | Some (Recov_e r) ->
      Recovery.set_transport r
        ~raw:(fun dst m ->
          Sim.send sim ~src:me ~dst (Link.Raw (Engine (Recov_m m))))
        ~link:ep
    | Some (Abc_e _ | Scabc_e _) | None -> ());
    let honest ~src m = handle node ~src m in
    match d.d_wrap with Some w when wrapped -> w me honest | _ -> honest
  in
  match d.d_link with
  | None ->
    let io =
      make_io
        ~send:(fun dst m -> Sim.send sim ~src:me ~dst (Link.Raw m))
        ~broadcast:(fun m -> Sim.broadcast sim ~src:me (Link.Raw m))
    in
    let node = make_node io in
    let h = install node None in
    Sim.set_handler sim me (fun ~src frame ->
        match frame with
        | Link.Raw m | Link.Data { payload = m; _ } -> h ~src m
        | Link.Ack _ -> ());
    node
  | Some lp ->
    let n = Sim.n sim in
    let ep =
      Link.create ~obs:(Sim.obs sim) ~policy:lp ~me ~n
        ~raw_send:(fun dst frame -> Sim.send sim ~src:me ~dst frame)
        ~timer
        ~deliver:(fun ~src:_ _ -> ())
        ()
    in
    let io =
      make_io
        ~send:(fun dst m -> Link.send ep dst m)
        ~broadcast:(fun m -> Link.broadcast ep m)
    in
    let node = make_node io in
    let h = install node (Some ep) in
    Link.set_deliver ep (fun ~src m -> h ~src m);
    Sim.set_handler sim me (fun ~src frame -> Link.handle ep ~src frame);
    node

let deploy ?wrap ?policy ?link ?(ckpt_interval = 0) ?(retry = 350.)
    ?(read_only = fun _ -> false) ~(sim : msg Link.frame Sim.t)
    ~(keyring : Keyring.t) ~(mode : mode)
    ~(make_app : unit -> string -> string) () : deployment =
  if ckpt_interval > 0 && mode = Confidential then
    invalid_arg "Service.deploy: checkpointing requires the Plain engine";
  let d =
    {
      d_sim = sim;
      d_keyring = keyring;
      d_mode = mode;
      d_policy = policy;
      d_link = link;
      d_interval = ckpt_interval;
      d_retry = retry;
      d_read_only = read_only;
      d_make_app = make_app;
      d_wrap = wrap;
      d_nodes = [||];
    }
  in
  d.d_nodes <- Array.init (Sim.n sim) (fun me -> wire d ~wrapped:true me);
  d

(* The engine's broadcast instance, for checkpoint/GC introspection
   (log peak, retired rounds) in campaigns and tests. *)
let abc_of (t : t) : Abc.t option =
  match t.engine with
  | Some (Abc_e a) -> Some a
  | Some (Recov_e r) -> Some (Recovery.abc r)
  | Some (Scabc_e sc) -> Some (Scabc.abc sc)
  | None -> None

let recovery_of (t : t) : Recovery.t option =
  match t.engine with Some (Recov_e r) -> Some r | _ -> None

let revive d party =
  Sim.recover d.d_sim party;
  (* The revived party is honest: a Byzantine wrap, if any, stays with
     the dead incarnation.  Its application state restarts from genesis
     and is rebuilt by replaying the delivered suffix during catch-up;
     until it observes enough traffic its direct answers may lag, which
     the client protocol absorbs — certificates only ever need t+1
     matching answers, never this replica's. *)
  let node = wire d ~wrapped:false party in
  d.d_nodes.(party) <- node;
  (match node.engine with
  | Some (Recov_e r) -> Recovery.start_catch_up r
  | Some (Abc_e _ | Scabc_e _) | None -> ());
  node

(* ---------------- client side -------------------------------------- *)

module Client = struct
  type phase = Fast | Ordered

  type pending = {
    p_wrapped : string;  (* SVQ1 frame: the ordered plaintext *)
    p_mode : mode;  (* engine mode for the ordered path *)
    p_accept_fast : bool;  (* query-originated: fast replies admissible *)
    mutable p_phase : phase;
    mutable p_on_wire : string;  (* current Request body (ciphertext if
                                    Confidential); "" while Fast *)
    mutable p_resends : int;
    p_started : float;  (* virtual submission time, for latency *)
    mutable p_groups :
      ((bool * string) * (int * Keyring.sig_share) list) list;
  }

  type c = {
    slot : int;  (* this client's simulator slot (>= n) *)
    keyring : Keyring.t;
    rng : Prng.t;
    io : msg Stack.client_io;
    resend_after : float;
    max_resends : int;
    fast_attempts : int;  (* query sends before falling back *)
    requests : (string, pending * (reply_cert -> unit)) Hashtbl.t;
    mutable submitted : int;
    mutable completed : int;
    mutable retries : int;
    mutable fastpath_hits : int;
    mutable fallbacks : int;
    mutable timeouts : int;
    mutable cert_failures : int;  (* combined but failed verification *)
    mutable rejected_replies : int;  (* malformed / forged / bad share *)
  }

  let obs_incr c name =
    if Obs.active c.io.Stack.c_obs then
      Obs.incr c.io.Stack.c_obs ~labels:svc_labels name

  let inflight c = Hashtbl.length c.requests
  let submitted c = c.submitted
  let completed c = c.completed
  let retries c = c.retries
  let fastpath_hits c = c.fastpath_hits
  let fallbacks c = c.fallbacks
  let timeouts c = c.timeouts
  let cert_failures c = c.cert_failures
  let rejected_replies c = c.rejected_replies

  let reject c = c.rejected_replies <- c.rejected_replies + 1

  (* One server's partial answer: decode the strict frame, bind it to
     the transport source (a corrupted server cannot speak in another's
     name), verify the share under the matching statement domain, then
     try to assemble the certificate from the answer's response group.
     Completion removes the request — pending state is bounded by the
     number of requests in flight, not by history. *)
  let on_reply (c : c) ~src frame =
    match Codec.decode_svc_reply frame with
    | None ->
      reject c;
      obs_incr c "svc_reply_rejected"
    | Some (fast, req_digest, server, response, share_b) -> (
      if src <> server || server < 0 || server >= c.io.Stack.c_n then begin
        reject c;
        obs_incr c "svc_reply_rejected"
      end
      else
        match Hashtbl.find_opt c.requests req_digest with
        | None -> ()  (* already assembled, timed out, or never ours *)
        | Some (p, callback) ->
          if fast && not p.p_accept_fast then begin
            (* An ordered submission must complete with an ordered
               certificate: fast shares for it can only exist through
               injected queries, and accepting them would silently
               downgrade a write to an unserialized read. *)
            reject c;
            obs_incr c "svc_reply_rejected"
          end
          else begin
            let stmt = reply_statement ~fast ~req_digest ~response in
            match Keyring.sig_share_of_bytes c.keyring share_b with
            | None ->
              reject c;
              obs_incr c "svc_reply_rejected"
            | Some share ->
              if
                not
                  (Keyring.service_verify_share c.keyring ~party:server
                     stmt share)
              then begin
                reject c;
                obs_incr c "svc_reply_rejected"
              end
              else begin
                let key = (fast, response) in
                let group =
                  match List.assoc_opt key p.p_groups with
                  | Some g -> g
                  | None -> []
                in
                if not (List.mem_assoc server group) then begin
                  let group = (server, share) :: group in
                  p.p_groups <-
                    (key, group) :: List.remove_assoc key p.p_groups;
                  (* Assembly succeeds once the responders form a
                     sharing-qualified set (t+1 in the threshold case). *)
                  match
                    Keyring.service_combine c.keyring stmt
                      (List.map snd group)
                  with
                  | None -> ()
                  | Some service_sig ->
                    if Keyring.service_verify c.keyring stmt service_sig
                    then begin
                      Hashtbl.remove c.requests req_digest;
                      c.completed <- c.completed + 1;
                      obs_incr c "svc_cert_assembled";
                      if fast then begin
                        c.fastpath_hits <- c.fastpath_hits + 1;
                        obs_incr c "svc_fastpath_hits"
                      end;
                      if Obs.active c.io.Stack.c_obs then
                        Obs.observe c.io.Stack.c_obs ~labels:svc_labels
                          "svc_reply_latency"
                          (c.io.Stack.c_clock () -. p.p_started);
                      callback
                        { rc_fast = fast;
                          rc_req_digest = req_digest;
                          rc_response = response;
                          rc_sig = service_sig }
                    end
                    else begin
                      c.cert_failures <- c.cert_failures + 1;
                      obs_incr c "svc_cert_failed"
                    end
                end
              end
          end)

  (* Defaults are sized to the simulator's WAN model (10-100 virtual ms
     per hop): a multi-round agreement takes virtual seconds, so the
     resend period must be comfortably above one ordering latency or
     every request burns its budget before the first answer lands. *)
  let create ?(resend_after = 1_500.) ?(max_resends = 25) ?(fast_attempts = 2)
      ~(sim : msg Link.frame Sim.t) ~(keyring : Keyring.t) ~slot ~seed () :
      c =
    let c =
      {
        slot;
        keyring;
        rng = Prng.create ~seed;
        io =
          Stack.client_endpoint ~sim ~slot ~handle:(fun ~src _ -> ignore src)
            ();
        resend_after;
        max_resends;
        fast_attempts;
        requests = Hashtbl.create 16;
        submitted = 0;
        completed = 0;
        retries = 0;
        fastpath_hits = 0;
        fallbacks = 0;
        timeouts = 0;
        cert_failures = 0;
        rejected_replies = 0;
      }
    in
    (* The endpoint's handler closes over [c], so install the real one
       after construction. *)
    Sim.set_handler sim slot (fun ~src frame ->
        match frame with
        | Link.Raw (Response f) | Link.Data { payload = Response f; _ } ->
          on_reply c ~src f
        | Link.Raw _ | Link.Data _ | Link.Ack _ -> ());
    c

  let ordered_wire c (p : pending) =
    if p.p_on_wire = "" then
      p.p_on_wire <-
        (match p.p_mode with
        | Plain -> p.p_wrapped
        | Confidential ->
          Scabc.encrypt_request c.keyring c.rng
            ~label:(string_of_int c.slot) p.p_wrapped);
    p.p_on_wire

  let send_current c (p : pending) =
    match p.p_phase with
    | Fast ->
      c.io.Stack.c_send_all (Query { client = c.slot; body = p.p_wrapped })
    | Ordered ->
      c.io.Stack.c_send_all
        (Request { client = c.slot; body = ordered_wire c p })

  (* Timer-driven resend: same nonce, so a resend that gets ordered
     twice is execution-deduped server-side and re-answered from the
     cache.  A query that exhausts its fast attempts falls back to the
     ordered path (same frame, same digest — late fast answers can still
     complete it).  A request that exhausts [max_resends] is abandoned:
     the entry is dropped so client memory stays bounded even against a
     dead service. *)
  let rec arm c req_digest =
    c.io.Stack.c_timer ~delay:c.resend_after (fun () ->
        match Hashtbl.find_opt c.requests req_digest with
        | None -> ()
        | Some (p, _) ->
          if p.p_resends + 1 >= c.max_resends then begin
            Hashtbl.remove c.requests req_digest;
            c.timeouts <- c.timeouts + 1;
            obs_incr c "svc_timeouts"
          end
          else begin
            p.p_resends <- p.p_resends + 1;
            c.retries <- c.retries + 1;
            obs_incr c "svc_retries";
            (if p.p_phase = Fast && p.p_resends >= c.fast_attempts then begin
               p.p_phase <- Ordered;
               c.fallbacks <- c.fallbacks + 1;
               obs_incr c "svc_fastpath_fallback"
             end);
            send_current c p;
            arm c req_digest
          end)

  let submit c ~mode ~accept_fast ~phase body callback =
    let nonce = Prng.bytes c.rng 8 in
    let wrapped =
      Codec.encode_svc_request ~client:c.slot ~nonce ~body
    in
    (* Servers hash the *ordered plaintext*, which in both modes (and on
       both paths) is the wrapped frame. *)
    let req_digest = Sha256.digest wrapped in
    let p =
      {
        p_wrapped = wrapped;
        p_mode = mode;
        p_accept_fast = accept_fast;
        p_phase = phase;
        p_on_wire = "";
        p_resends = 0;
        p_started = c.io.Stack.c_clock ();
        p_groups = [];
      }
    in
    Hashtbl.replace c.requests req_digest (p, callback);
    c.submitted <- c.submitted + 1;
    obs_incr c "svc_requests";
    send_current c p;
    arm c req_digest

  (* Send [body] to every server for ordering; [callback] fires once
     with the assembled reply certificate. *)
  let request (c : c) ~(mode : mode) (body : string)
      (callback : reply_cert -> unit) : unit =
    submit c ~mode ~accept_fast:false ~phase:Ordered body callback

  (* Read-only fast path: query every replica directly; accepted on t+1
     matching signed answers without a broadcast round.  Falls back to
     the ordered path (under [mode]) if the fast phase stalls — replicas
     refuse non-read-only bodies, disagreeing replicas never form a
     group, and drop chaos can eat the direct exchange. *)
  let query (c : c) ~(mode : mode) (body : string)
      (callback : reply_cert -> unit) : unit =
    submit c ~mode ~accept_fast:true ~phase:Fast body callback
end
