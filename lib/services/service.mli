(** Trusted-service replication engine and client protocol (paper,
    Section 5).

    Deterministic state machines replicated on all servers; requests are
    delivered by atomic broadcast ([Plain]) or secure causal atomic
    broadcast ([Confidential]); every server returns a partial answer
    carrying a threshold-signature share, which the client assembles into
    one service signature under the service's single public key — a
    transferable {!reply_cert}.  Read-only queries have a fast path that
    skips agreement: replicas answer directly under a distinct statement
    domain and the client accepts on t+1 matching signed answers. *)

type mode = Plain | Confidential

type engine_msg =
  | Abc_m of Abc.msg
  | Scabc_m of Scabc.msg
  | Recov_m of Recovery.msg

type msg =
  | Engine of engine_msg
  | Request of { client : int; body : string }
      (** body: the SVQ1 request frame ([Plain]) or its TDH2 ciphertext
          ([Confidential]) *)
  | Query of { client : int; body : string }
      (** read-only fast path; body: an SVQ1 frame, always plaintext *)
  | Response of string  (** an SVR1 reply frame *)

type engine = Abc_e of Abc.t | Scabc_e of Scabc.t | Recov_e of Recovery.t

type t = {
  me : int;
  keyring : Keyring.t;
  obs : Obs.t;
  sim_send : int -> msg -> unit;
  mutable engine : engine option;
  execute : string -> string;
  read_only : string -> bool;
  mutable ordered : int;
  mutable executed : int;
  mutable malformed : int;
  seen : (int * string, string) Hashtbl.t;
  mutable dup_suppressed : int;
  mutable queries_served : int;
  mutable queries_refused : int;
}

val parse_request : string -> (int * string * string) option
(** Decode an ordered SVQ1 request frame into [(client, nonce, body)].
    Rejects (returns [None] for) an empty nonce: the nonce keys
    execution dedup, so an empty one would collapse every request of a
    client onto a single dedup slot and all but the first would be
    answered from the cache. *)

val deliver_ordered : t -> string -> unit
(** Execute one ordered request, exactly as the engine's deliver
    callback does.  Requests are deduplicated by (client, nonce): a
    replay — e.g. a captured confidential request re-encrypted under
    fresh randomness, which defeats the broadcast's content dedup, or an
    honest resend ordered twice — skips the state machine, bumps
    [dup_suppressed] (counter [service_dup_suppressed], layer
    ["service"]) and re-answers from the cached response. *)

val response_statement : req_digest:string -> response:string -> string
(** The statement an ordered-path service signature covers. *)

val query_statement : req_digest:string -> response:string -> string
(** The statement a fast-path service signature covers.  Distinct from
    {!response_statement}, so neither kind of certificate can be passed
    off as the other. *)

val reply_statement :
  fast:bool -> req_digest:string -> response:string -> string

(** {2 Reply certificates} *)

type reply_cert = {
  rc_fast : bool;  (** assembled on the fast path (query domain) *)
  rc_req_digest : string;  (** SHA-256 of the ordered plaintext frame *)
  rc_response : string;
  rc_sig : Keyring.service_signature;
}
(** Transferable evidence of the service's answer: any third party
    holding the service public key can check it without knowing any
    individual server.  An ordered certificate ([rc_fast = false])
    asserts that the request was executed at its serialization point; a
    fast certificate asserts only that some honest replica answered this
    from one of its serialized states. *)

val verify_reply_cert : Keyring.t -> reply_cert -> bool

val reply_cert_to_bytes : Keyring.t -> reply_cert -> string
(** Strict SVC1 byte form, for handing to third parties. *)

val reply_cert_of_bytes : Keyring.t -> string -> reply_cert option
(** Inverse of {!reply_cert_to_bytes}; decoding confers no authority
    until {!verify_reply_cert} accepts the result. *)

val handle : t -> src:int -> msg -> unit

(** {2 Deployment} *)

type deployment

val deploy :
  ?wrap:(int -> msg Sim.handler -> msg Sim.handler) ->
  ?policy:Abc.policy ->
  ?link:Link.policy ->
  ?ckpt_interval:int ->
  ?retry:float ->
  ?read_only:(string -> bool) ->
  sim:msg Link.frame Sim.t ->
  keyring:Keyring.t ->
  mode:mode ->
  make_app:(unit -> string -> string) ->
  unit ->
  deployment
(** One replica per server slot; [make_app ()] builds a fresh
    per-replica state machine.  [read_only] admits request bodies to the
    fast path (default: none).  [ckpt_interval > 0] (Plain mode only;
    raises [Invalid_argument] under [Confidential]) wraps the engine in
    {!Recovery}: certified checkpoints every that many rounds truncate
    the delivered log, bounding memory under sustained load, and give
    revived replicas the certified state-transfer path.  [?link]
    interposes an ARQ endpoint per server for engine traffic;
    client-facing traffic always travels Raw (clients resend instead).
    [?wrap] is the Byzantine injection hook, as in {!Stack.deploy}. *)

val nodes : deployment -> t array

val revive : deployment -> int -> t
(** Recover a crashed server with fresh protocol and application state
    and, under a checkpointing engine, start certified catch-up
    ({!Recovery.start_catch_up}).  Application state is rebuilt by
    replaying the delivered suffix; until the replica catches up its
    direct answers may lag, which clients absorb — a certificate needs
    t+1 matching answers, never a specific replica's. *)

val abc_of : t -> Abc.t option
(** The engine's atomic-broadcast instance (through {!Recovery} or
    {!Scabc} if applicable), for checkpoint/GC introspection. *)

val recovery_of : t -> Recovery.t option

val msg_size : Keyring.t -> msg -> int

(** {2 Client} *)

(** Send a request to every server (more than t, so corrupted servers
    cannot swallow it) and assemble matching answers into a verified
    {!reply_cert}.  Loss recovery is protocol-level: a virtual-time
    timer resends with the same nonce (safe against re-execution by
    server-side dedup) until the certificate assembles or the attempt
    budget runs out. *)
module Client : sig
  type c

  val create :
    ?resend_after:float ->
    ?max_resends:int ->
    ?fast_attempts:int ->
    sim:msg Link.frame Sim.t ->
    keyring:Keyring.t ->
    slot:int ->
    seed:int ->
    unit ->
    c
  (** Attach a client to simulator slot [slot] (>= n).  [resend_after]
      is the virtual-time resend period; [max_resends] bounds total
      sends per request (the request is abandoned and counted as a
      timeout after that, keeping pending state bounded even against a
      dead service); [fast_attempts] is how many query sends precede
      fallback to the ordered path. *)

  val request : c -> mode:mode -> string -> (reply_cert -> unit) -> unit
  (** Submit [body] for ordering; the callback fires once with the
      assembled ordered reply certificate. *)

  val query : c -> mode:mode -> string -> (reply_cert -> unit) -> unit
  (** Read-only fast path: query every replica directly; accepted on
      t+1 matching signed answers without a broadcast round.  Falls
      back to an ordered request (under [mode]) if the fast phase
      stalls — the callback then fires with an ordered certificate. *)

  val inflight : c -> int
  val submitted : c -> int
  val completed : c -> int
  val retries : c -> int
  val fastpath_hits : c -> int
  val fallbacks : c -> int
  val timeouts : c -> int
  val cert_failures : c -> int
  val rejected_replies : c -> int
end
