(** Trusted-service replication engine and client protocol (paper,
    Section 5).

    Deterministic state machines replicated on all servers; requests are
    delivered by atomic broadcast ([Plain]) or secure causal atomic
    broadcast ([Confidential]); every server returns a partial answer
    carrying a threshold-signature share, which the client assembles into
    one service signature under the service's single public key. *)

type mode = Plain | Confidential

type engine_msg = Abc_m of Abc.msg | Scabc_m of Scabc.msg

type msg =
  | Engine of engine_msg
  | Request of { client : int; body : string }
  | Response of {
      req_digest : string;
      server : int;
      response : string;
      share : Keyring.sig_share;
    }

type engine = Abc_e of Abc.t | Scabc_e of Scabc.t

type t = {
  me : int;
  keyring : Keyring.t;
  obs : Obs.t;
  sim_send : int -> msg -> unit;
  mutable engine : engine option;
  execute : string -> string;
  mutable executed : int;
  seen : (int * string, string) Hashtbl.t;
  mutable dup_suppressed : int;
}

val parse_request : string -> (int * string * string) option
(** Decode an ordered request wrap "client | nonce | body" into
    [(client, nonce, body)]. *)

val deliver_ordered : t -> string -> unit
(** Execute one ordered request, exactly as the engine's deliver
    callback does.  Requests are deduplicated by (client, nonce): a
    replay — e.g. a captured confidential request re-encrypted under
    fresh randomness, which defeats the broadcast's content dedup —
    skips the state machine, bumps [dup_suppressed] (counter
    [service_dup_suppressed], layer ["service"]) and re-answers from
    the cached response. *)

val response_statement : req_digest:string -> response:string -> string
(** The statement the service signature covers. *)

val handle : t -> src:int -> msg -> unit

val deploy :
  sim:msg Sim.t ->
  keyring:Keyring.t ->
  mode:mode ->
  make_app:(unit -> string -> string) ->
  unit ->
  t array
(** One replica per server slot; [make_app ()] builds a fresh per-replica
    state machine. *)

(** Client side: send a request to every server (more than t, so
    corrupted servers cannot swallow it) and assemble matching answers
    until the combined service signature verifies. *)
module Client : sig
  type c

  val create : sim:msg Sim.t -> keyring:Keyring.t -> slot:int -> seed:int -> c
  (** Attach a client to simulator slot [slot] (>= n). *)

  val request :
    c -> mode:mode -> string -> (string -> Keyring.service_signature -> unit) -> unit
  (** Fire-and-collect; the callback fires once with the agreed response
      and its service signature. *)
end

val msg_size : Keyring.t -> msg -> int
