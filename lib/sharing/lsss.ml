(* Linear secret sharing for monotone formulas: the Benaloh-Leichter
   construction with Shamir sharing inside each threshold gate.

   To share s over Theta_k(children): pick a random degree-(k-1)
   polynomial f with f(0) = s and recursively share f(j) to child j.
   Each Leaf of the formula ends up holding one field element (a party
   that owns several leaves holds several).  Reconstruction composes the
   Lagrange coefficients down the tree, so the secret is a *linear*
   combination of leaf values — which is what lets the threshold
   cryptography of Section 3 work in the exponent for any Q^3 structure
   (Section 4.2). *)

module B = Bignum
module F = Monotone_formula

type scheme = {
  modulus : B.t;
  formula : F.t;
  leaf_owner : int array;  (* leaf id (DFS order) -> party index *)
  mutable recomb_cache : (Pset.t * (int * B.t) list option) list;
      (* move-to-front LRU over availability sets; a [Pset.t] is a
         native int, so the key comparison is one machine word.
         Unqualified ([None]) results are cached too — they recur on
         every share arrival while a combine waits for a quorum. *)
}

(* Protocols resolve the same handful of availability sets round after
   round (the quorum that formed first, then supersets of it as late
   shares trickle in), so a small bound loses nothing. *)
let recomb_cache_capacity = 64

type subshare = { leaf : int; party : int; value : B.t }

let build ~modulus formula =
  let owners = ref [] in
  let rec walk f =
    match f with
    | F.Leaf i -> owners := i :: !owners
    | F.Threshold (_, children) -> List.iter walk children
  in
  walk formula;
  { modulus;
    formula;
    leaf_owner = Array.of_list (List.rev !owners);
    recomb_cache = [] }

let num_leaves scheme = Array.length scheme.leaf_owner
let leaf_owner scheme leaf = scheme.leaf_owner.(leaf)

let share scheme rng ~(secret : B.t) : subshare list =
  let next_leaf = ref 0 in
  let out = ref [] in
  let rec go f value =
    match f with
    | F.Leaf party ->
      let leaf = !next_leaf in
      incr next_leaf;
      out := { leaf; party; value } :: !out
    | F.Threshold (k, children) ->
      let p =
        Poly.random rng ~modulus:scheme.modulus ~degree:(k - 1) ~secret:value
      in
      List.iteri (fun j c -> go c (Poly.eval_at_int p (j + 1))) children
  in
  go scheme.formula (B.erem secret scheme.modulus);
  List.rev !out

let shares_of_party (subshares : subshare list) (party : int) : subshare list =
  List.filter (fun s -> s.party = party) subshares

(* Recombination vector: coefficients c_l such that the secret equals
   sum_l c_l * value_l over the leaves owned by [avail].  [None] when
   [avail] is not qualified. *)
let recombination_uncached scheme (avail : Pset.t) : (int * B.t) list option =
  let next_leaf = ref 0 in
  let rec solve f : (int * B.t) list option =
    match f with
    | F.Leaf party ->
      let leaf = !next_leaf in
      incr next_leaf;
      if Pset.mem party avail then Some [ (leaf, B.one) ] else None
    | F.Threshold (k, children) ->
      (* Solve each child first (the traversal must visit every leaf to
         keep the DFS numbering aligned), then pick the first k solved. *)
      let solved = List.mapi (fun j c -> (j + 1, solve c)) children in
      let usable =
        List.filter_map
          (fun (j, r) -> match r with Some coeffs -> Some (j, coeffs) | None -> None)
          solved
      in
      if List.length usable < k then None
      else begin
        let chosen = List.filteri (fun idx _ -> idx < k) usable in
        let points = List.map fst chosen in
        let lambdas = Poly.lagrange_at_zero ~modulus:scheme.modulus points in
        Some
          (List.concat_map
             (fun (j, coeffs) ->
               let lambda = List.assoc j lambdas in
               List.map
                 (fun (leaf, c) -> (leaf, B.mul_mod lambda c scheme.modulus))
                 coeffs)
             chosen)
      end
  in
  solve scheme.formula

(* Memoized front end: every scheme-level combine (coin flips, TDH2
   decryptions, certificate checks, proactive refreshes) resolves its
   availability set through this LRU, so the nested-Lagrange solve runs
   once per distinct set instead of once per round. *)
let recombination scheme (avail : Pset.t) : (int * B.t) list option =
  let rec lookup acc = function
    | [] -> None
    | ((key, v) as hd) :: tl ->
      if Pset.equal key avail then begin
        scheme.recomb_cache <- hd :: List.rev_append acc tl;
        Some v
      end
      else lookup (hd :: acc) tl
  in
  match lookup [] scheme.recomb_cache with
  | Some v ->
    Obs_crypto.recomb_cache_hit ();
    v
  | None ->
    Obs_crypto.recomb_cache_miss ();
    let v = recombination_uncached scheme avail in
    scheme.recomb_cache <-
      List.filteri
        (fun i _ -> i < recomb_cache_capacity)
        ((avail, v) :: scheme.recomb_cache);
    v

let reconstruct scheme (subshares : subshare list) (avail : Pset.t) :
    B.t option =
  match recombination scheme avail with
  | None -> None
  | Some coeffs ->
    let value_of_leaf leaf =
      match List.find_opt (fun s -> s.leaf = leaf) subshares with
      | Some s -> s.value
      | None -> invalid_arg "Lsss.reconstruct: missing subshare"
    in
    Some
      (List.fold_left
         (fun acc (leaf, c) ->
           B.erem (B.add acc (B.mul c (value_of_leaf leaf))) scheme.modulus)
         B.zero coeffs)
