(** Linear secret sharing for monotone formulas: the Benaloh–Leichter
    construction with Shamir sharing inside every threshold gate.

    Reconstruction is a linear combination of leaf values (nested
    Lagrange), which is what lets the threshold cryptography work "in the
    exponent" for any Q{^3} structure (paper, Section 4.2). *)

type scheme

type subshare = { leaf : int; party : int; value : Bignum.t }
(** One field element held by [party] for formula leaf [leaf] (DFS
    numbering); a party owning several leaves holds several subshares. *)

val build : modulus:Bignum.t -> Monotone_formula.t -> scheme
val num_leaves : scheme -> int
val leaf_owner : scheme -> int -> int

val share : scheme -> Prng.t -> secret:Bignum.t -> subshare list
(** Fresh sharing of [secret]; returns every leaf's subshare. *)

val shares_of_party : subshare list -> int -> subshare list

val recombination : scheme -> Pset.t -> (int * Bignum.t) list option
(** [recombination scheme avail] is the coefficient vector [(leaf, c)]
    with [secret = Σ c · value_leaf] over leaves owned by [avail], or
    [None] when [avail] is unqualified.  The same vector recombines
    exponent shares: [base^secret = Π (base^{value})^c].  Results
    (including [None]) are memoized per scheme in a small bounded LRU
    keyed by the availability set, so repeated combines over the same
    quorum skip the nested-Lagrange solve. *)

val reconstruct : scheme -> subshare list -> Pset.t -> Bignum.t option
