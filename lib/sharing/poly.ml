(* Polynomials over the prime field Z_q, for Shamir secret sharing and
   Lagrange interpolation at zero. *)

module B = Bignum

type t = { modulus : B.t; coeffs : B.t array }
(* coeffs.(i) is the coefficient of x^i; coeffs.(0) is the secret. *)

let random rng ~modulus ~degree ~secret =
  if degree < 0 then invalid_arg "Poly.random: negative degree";
  let coeffs =
    Array.init (degree + 1) (fun i ->
        if i = 0 then B.erem secret modulus else Prng.bignum_below rng modulus)
  in
  { modulus; coeffs }

let degree p = Array.length p.coeffs - 1

let eval p (x : B.t) : B.t =
  (* Horner evaluation mod q. *)
  let acc = ref B.zero in
  for i = Array.length p.coeffs - 1 downto 0 do
    acc := B.erem (B.add (B.mul !acc x) p.coeffs.(i)) p.modulus
  done;
  !acc

let eval_at_int p (x : int) : B.t = eval p (B.of_int x)

(* Lagrange coefficients for interpolating f(0) from the points [xs]
   (distinct non-zero ints): f(0) = sum_j lambda_j f(x_j) mod q.

   The distinctness precondition is enforced: a repeated point would
   otherwise be *silently* skipped by the [xm = xj] guard below for
   every occurrence, yielding well-formed but wrong coefficients (and a
   zero point makes every other numerator vanish).  Callers feeding
   adversary-influenced index sets must get an exception, not a wrong
   secret. *)
let lagrange_at_zero ~modulus (xs : int list) : (int * B.t) list =
  (match List.find_opt (fun x -> x = 0) xs with
  | Some _ -> invalid_arg "Poly.lagrange_at_zero: zero evaluation point"
  | None -> ());
  let rec dup_check = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as tl) ->
      if a = b then
        invalid_arg "Poly.lagrange_at_zero: duplicate evaluation point"
      else dup_check tl
  in
  dup_check (List.sort compare xs);
  let inv v =
    match B.inv_mod v modulus with
    | Some i -> i
    | None -> invalid_arg "Poly.lagrange_at_zero: duplicate or zero point"
  in
  List.map
    (fun xj ->
      let num, den =
        List.fold_left
          (fun (num, den) xm ->
            if xm = xj then (num, den)
            else
              ( B.mul_mod num (B.of_int xm) modulus,
                B.mul_mod den (B.erem (B.of_int (xm - xj)) modulus) modulus ))
          (B.one, B.one) xs
      in
      (xj, B.mul_mod num (inv den) modulus))
    xs
