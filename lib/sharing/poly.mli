(** Polynomials over Z{_q} for Shamir secret sharing and Lagrange
    interpolation at zero. *)

type t

val random : Prng.t -> modulus:Bignum.t -> degree:int -> secret:Bignum.t -> t
(** Uniform polynomial of the given degree with constant term [secret]
    (reduced mod [modulus]). *)

val degree : t -> int
val eval : t -> Bignum.t -> Bignum.t
val eval_at_int : t -> int -> Bignum.t

val lagrange_at_zero : modulus:Bignum.t -> int list -> (int * Bignum.t) list
(** Coefficients λ{_j} with [f 0 = Σ λ_j · f x_j] for any polynomial of
    degree < |points|; points must be distinct, non-zero mod [modulus].
    Raises [Invalid_argument] on a duplicate or zero point (a duplicate
    would otherwise yield silently wrong coefficients). *)
