(* Counters collected by the network simulator; the message-complexity
   experiments (EXPERIMENTS.md, M1) read these.

   The four plain fields are the historical interface and every existing
   caller reads them directly, so they stay.  When the simulator is
   created with an active [Obs.t], the same events are mirrored into its
   registry (layer "sim"), plus a message-size histogram — that is what
   the bench harness snapshots.  [pp] and [reset] go through the
   registry mirror when one is attached, so the two views cannot
   drift. *)

type sink = {
  s_messages : Obs_registry.counter;
  s_bytes : Obs_registry.counter;
  s_deliveries : Obs_registry.counter;
  s_drops : Obs_registry.counter;
  s_chaos_drops : Obs_registry.counter;
  s_chaos_dups : Obs_registry.counter;
  s_chaos_reorders : Obs_registry.counter;
  s_size : Obs_histogram.t;
}

type t = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable deliveries : int;
  mutable drops : int;  (* all undelivered: crashed dst, no handler, chaos *)
  mutable chaos_drops : int;  (* the chaos-policy share of [drops] *)
  mutable chaos_dups : int;
  mutable chaos_reorders : int;
  sink : sink option;
}

let make_sink obs =
  let labels = [ ("layer", "sim") ] in
  { s_messages = Obs.counter obs ~labels "messages_sent";
    s_bytes = Obs.counter obs ~labels "bytes_sent";
    s_deliveries = Obs.counter obs ~labels "deliveries";
    s_drops = Obs.counter obs ~labels "drops";
    s_chaos_drops = Obs.counter obs ~labels "chaos_drops";
    s_chaos_dups = Obs.counter obs ~labels "chaos_dups";
    s_chaos_reorders = Obs.counter obs ~labels "chaos_reorders";
    s_size = Obs.histogram obs ~labels "msg_bytes" }

let create ?(obs = Obs.noop) () =
  { messages_sent = 0;
    bytes_sent = 0;
    deliveries = 0;
    drops = 0;
    chaos_drops = 0;
    chaos_dups = 0;
    chaos_reorders = 0;
    sink = (if Obs.active obs then Some (make_sink obs) else None) }

let incr_sent t ~bytes =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  match t.sink with
  | None -> ()
  | Some s ->
    Obs_registry.incr s.s_messages;
    Obs_registry.incr ~by:bytes s.s_bytes;
    Obs_histogram.observe s.s_size (float_of_int bytes)

let incr_deliveries t =
  t.deliveries <- t.deliveries + 1;
  match t.sink with
  | None -> ()
  | Some s -> Obs_registry.incr s.s_deliveries

let incr_drops t =
  t.drops <- t.drops + 1;
  match t.sink with
  | None -> ()
  | Some s -> Obs_registry.incr s.s_drops

let incr_chaos_drops t =
  t.chaos_drops <- t.chaos_drops + 1;
  match t.sink with
  | None -> ()
  | Some s -> Obs_registry.incr s.s_chaos_drops

let incr_chaos_dups t =
  t.chaos_dups <- t.chaos_dups + 1;
  match t.sink with
  | None -> ()
  | Some s -> Obs_registry.incr s.s_chaos_dups

let incr_chaos_reorders t =
  t.chaos_reorders <- t.chaos_reorders + 1;
  match t.sink with
  | None -> ()
  | Some s -> Obs_registry.incr s.s_chaos_reorders

(* Registered counters are shared handles owned by the registry, so
   "reset" means driving them back to zero, not replacing them. *)
let reset t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.deliveries <- 0;
  t.drops <- 0;
  t.chaos_drops <- 0;
  t.chaos_dups <- 0;
  t.chaos_reorders <- 0;
  match t.sink with
  | None -> ()
  | Some s ->
    List.iter
      (fun c -> Obs_registry.incr ~by:(-Obs_registry.value c) c)
      [ s.s_messages; s.s_bytes; s.s_deliveries; s.s_drops;
        s.s_chaos_drops; s.s_chaos_dups; s.s_chaos_reorders ];
    Obs_histogram.reset s.s_size

let pp fmt t =
  (* Through the registry mirror when attached: pp then reports what a
     snapshot would, guarding against the two views drifting. *)
  let sent, bytes, delivered, dropped, chaos =
    match t.sink with
    | None ->
      ( t.messages_sent, t.bytes_sent, t.deliveries, t.drops,
        (t.chaos_drops, t.chaos_dups, t.chaos_reorders) )
    | Some s ->
      ( Obs_registry.value s.s_messages,
        Obs_registry.value s.s_bytes,
        Obs_registry.value s.s_deliveries,
        Obs_registry.value s.s_drops,
        ( Obs_registry.value s.s_chaos_drops,
          Obs_registry.value s.s_chaos_dups,
          Obs_registry.value s.s_chaos_reorders ) )
  in
  Format.fprintf fmt "sent=%d bytes=%d delivered=%d dropped=%d" sent bytes
    delivered dropped;
  match chaos with
  | 0, 0, 0 -> ()
  | cd, cu, cr ->
    Format.fprintf fmt " chaos(drop=%d dup=%d reorder=%d)" cd cu cr
