(** Counters collected by the network simulator (read by the message-
    complexity experiments).

    The four mutable fields are the stable, historical interface:
    existing callers read [messages_sent] / [bytes_sent] / [deliveries]
    / [drops] directly and may keep doing so.  When created with an
    active observability handle ({!create} [~obs]), every update is
    mirrored into the handle's registry under layer ["sim"] — counters
    with the same four names plus a ["msg_bytes"] size histogram — which
    is the view the bench harness snapshots and diffs.  {!pp} and
    {!reset} operate through the registry mirror when one is attached,
    so the field view and the registry view cannot drift apart. *)

type t = private {
  mutable messages_sent : int;  (** point-to-point sends *)
  mutable bytes_sent : int;  (** estimated wire bytes ([Sim]'s [size]) *)
  mutable deliveries : int;  (** messages handed to a live handler *)
  mutable drops : int;
      (** every undelivered message: crashed destination, missing
          handler, or chaos-policy loss *)
  mutable chaos_drops : int;  (** the chaos-policy share of [drops] *)
  mutable chaos_dups : int;  (** chaos-made duplicate deliveries *)
  mutable chaos_reorders : int;  (** chaos-deferred delivery attempts *)
  sink : sink option;
}

and sink
(** Registry mirror; absent unless created with an active [~obs]. *)

val create : ?obs:Obs.t -> unit -> t
(** Defaults to [Obs.noop]: plain fields only, no registry mirror. *)

val incr_sent : t -> bytes:int -> unit
(** One send of [bytes] estimated wire bytes. *)

val incr_deliveries : t -> unit
val incr_drops : t -> unit

val incr_chaos_drops : t -> unit
(** A chaos-policy loss; the caller also counts it in {!incr_drops}. *)

val incr_chaos_dups : t -> unit
val incr_chaos_reorders : t -> unit

val reset : t -> unit
(** Zeros the fields and drives the registry mirror (when attached)
    back to zero too. *)

val pp : Format.formatter -> t -> unit
(** [sent=... bytes=... delivered=... dropped=...]; values come from the
    registry mirror when one is attached. *)
