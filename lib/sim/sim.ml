(* Discrete-event simulator of an asynchronous network under adversarial
   scheduling.

   The model of the paper, Section 2: a static set of servers linked by
   asynchronous authenticated point-to-point channels, where the
   adversary controls the order (and, within the run, the timing) of all
   message deliveries and fully controls corrupted parties.  "The network
   is the adversary": the scheduling policy *is* the adversary's
   strategy, so safety/liveness claims become testable by quantifying
   over seeds and policies.

   Beyond the scheduling policy, a [chaos] specification injects link-
   level faults — probabilistic drop / duplication / deferral with
   per-link rates, and timed partition schedules — all drawn from a
   dedicated seeded PRNG so every run stays exactly reproducible.
   Message loss steps outside the paper's reliable-channel model, so
   under a lossy chaos spec only safety (never liveness) claims are
   meaningful; the fault campaign runner (lib/faults) tracks that
   distinction.

   Virtual time exists only to (a) drive the latency model of the benign
   scheduler and (b) let timeout-based baselines (the CL99-style
   deterministic protocol) express their failure detectors; the
   randomized protocols of the architecture never read the clock. *)

type party = int

type 'msg envelope = {
  seq : int;
  src : party;
  dst : party;
  msg : 'msg;
  ready_at : float;  (* earliest "benign" delivery time *)
  dup : bool;  (* a chaos-made duplicate (never re-duplicated) *)
}

type policy =
  | Fifo  (** deliver in send order *)
  | Random_order  (** uniformly random pending message *)
  | Latency_order  (** benign WAN: deliver by ready_at *)
  | Delay_victims of Pset.t
      (** adversarial: messages from/to the victim set are delivered only
          when nothing else is pending *)

(* ---------- chaos: link faults and partition schedules -------------- *)

type link_fault = {
  drop : float;  (* P(delivery attempt silently loses the message) *)
  duplicate : float;  (* P(a second, re-latencied copy is enqueued) *)
  reorder : float;  (* P(the chosen message is pushed back instead) *)
  delay : float;
      (* extra latency as a multiplier on the benign draw: every latency
         on this link becomes latency * (1 + delay).  Deterministic (no
         extra PRNG draw), so delay = 0 reproduces prior schedules
         bit-for-bit. *)
}

let no_fault = { drop = 0.0; duplicate = 0.0; reorder = 0.0; delay = 0.0 }

type partition = {
  from_t : float;
  until_t : float;  (* the cut heals at [until_t] (exclusive window) *)
  cells : Pset.t list;  (* parties in no cell form one implicit cell *)
}

type chaos = {
  default_link : link_fault;
  links : ((party * party) * link_fault) list;  (* per-link overrides *)
  partitions : partition list;
}

let benign_chaos =
  { default_link = no_fault; links = []; partitions = [] }

type chaos_state = { spec : chaos; crng : Prng.t }

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Sim.set_chaos: %s rate %g not in [0,1]" what r)

let check_fault lf =
  check_rate "drop" lf.drop;
  check_rate "duplicate" lf.duplicate;
  check_rate "reorder" lf.reorder;
  if not (lf.delay >= 0.0 && lf.delay <= 1_000.0) then
    invalid_arg
      (Printf.sprintf "Sim.set_chaos: delay factor %g not in [0,1000]" lf.delay)

let link_fault_for spec ~src ~dst =
  match List.assoc_opt (src, dst) spec.links with
  | Some lf -> lf
  | None -> spec.default_link

(* Cell index of a party; every party outside all listed cells shares
   the implicit cell -1, so two unlisted parties are never separated. *)
let cell_of cells p =
  let rec go i = function
    | [] -> -1
    | c :: rest -> if Pset.mem p c then i else go (i + 1) rest
  in
  go 0 cells

let separated_by pa ~src ~dst tau =
  pa.from_t <= tau && tau < pa.until_t
  && cell_of pa.cells src <> cell_of pa.cells dst

(* Earliest time >= [tau] at which no partition separates src and dst.
   Each hop jumps to a strict-future heal time, so this terminates. *)
let rec release_at spec ~src ~dst tau =
  match
    List.find_opt (fun pa -> separated_by pa ~src ~dst tau) spec.partitions
  with
  | Some pa -> release_at spec ~src ~dst pa.until_t
  | None -> tau

(* ---------- events and state ---------------------------------------- *)

type 'msg handler = src:party -> 'msg -> unit

type drop_reason = Crashed | No_handler | Chaos

let drop_reason_label = function
  | Crashed -> "crashed"
  | No_handler -> "no-handler"
  | Chaos -> "chaos"

(* Optional event trace, for debugging and the CLI's --trace output. *)
type trace_event =
  | Delivered of { at : float; src : party; dst : party; summary : string }
  | Dropped of { at : float; src : party; dst : party; reason : drop_reason }
  | Timer_fired of { at : float; party : party }

type 'msg t = {
  n : int;  (* servers are parties 0 .. n-1; higher ids are clients *)
  slots : int;
  rng : Prng.t;
  mutable policy : policy;
  mutable chaos : chaos_state option;
  mutable clock : float;
  mutable seq : int;
  mutable pending : 'msg envelope list;  (* newest first *)
  handlers : 'msg handler option array;
  crashed : bool array;
  mutable timers : (float * party * (unit -> unit)) list;
  metrics : Metrics.t;
  size : 'msg -> int;
  obs : Obs.t;
  mutable tracer : ('msg -> string) option;
  mutable trace : trace_event list;  (* newest first *)
  mutable steps_total : int;  (* completed steps over the sim's lifetime *)
  mutable stall_probe : (unit -> string) option;
      (* protocol-level diagnostics rendered into Out_of_steps *)
}

let create ?(policy = Random_order) ?(extra = 8) ?(size = fun _ -> 1)
    ?(obs = Obs.noop) ~n ~seed () : 'msg t =
  { n;
    slots = n + extra;
    rng = Prng.create ~seed;
    policy;
    chaos = None;
    clock = 0.0;
    seq = 0;
    pending = [];
    handlers = Array.make (n + extra) None;
    crashed = Array.make (n + extra) false;
    timers = [];
    metrics = Metrics.create ~obs ();
    size;
    obs;
    tracer = None;
    trace = [];
    steps_total = 0;
    stall_probe = None }

let n t = t.n
let clock t = t.clock
let metrics t = t.metrics
let obs t = t.obs
let steps t = t.steps_total
let set_policy t p = t.policy <- p
let set_stall_probe t probe = t.stall_probe <- Some probe

let set_chaos t = function
  | None -> t.chaos <- None
  | Some spec ->
    check_fault spec.default_link;
    List.iter (fun (_, lf) -> check_fault lf) spec.links;
    List.iter
      (fun pa ->
        if not (pa.until_t > pa.from_t) then
          invalid_arg "Sim.set_chaos: empty partition window")
      spec.partitions;
    (* The chaos PRNG is split off the scheduler's at installation time,
       so fault draws never perturb the delivery schedule itself. *)
    t.chaos <- Some { spec; crng = Prng.split t.rng }

let set_handler t party (h : 'msg handler) =
  if party < 0 || party >= t.slots then invalid_arg "Sim.set_handler";
  (* Installing a handler on a crashed slot would silently re-arm
     delivery while the crash flag still suppresses timers — a zombie
     that receives but never times out.  The lifecycle is explicit:
     [recover] first, then install the fresh handler. *)
  if t.crashed.(party) then
    invalid_arg "Sim.set_handler: party is crashed (use Sim.recover first)";
  t.handlers.(party) <- Some h

let wrap_handler t party f =
  if party < 0 || party >= t.slots then invalid_arg "Sim.wrap_handler";
  let prev =
    match t.handlers.(party) with
    | Some h -> h
    | None -> fun ~src:_ _ -> ()
  in
  t.handlers.(party) <- Some (f prev)

let enable_trace t ~summarize = t.tracer <- Some summarize
let trace t = List.rev t.trace

let crash t party =
  t.crashed.(party) <- true;
  (* A dead node's timers are inert: purge its pending callbacks so the
     scheduler never has to consider them again (the fire-time guard in
     [fire_due_timers] stays as a second line of defence). *)
  t.timers <- List.filter (fun (_, p, _) -> p <> party) t.timers

let is_crashed t party = t.crashed.(party)

(* Un-crash a party.  The slot comes back amnesiac: the crash purged its
   timers and [recover] drops its handler, so the old incarnation can
   never fire again; the caller must install a fresh handler (and any
   catch-up logic) before the party participates.  Envelopes addressed
   to the party while it was down were dropped at delivery time and stay
   dropped — recovery does not resurrect lost messages. *)
let recover t party =
  if party < 0 || party >= t.slots then invalid_arg "Sim.recover";
  if not t.crashed.(party) then invalid_arg "Sim.recover: party not crashed";
  t.crashed.(party) <- false;
  t.handlers.(party) <- None

(* Random per-message WAN latency in [10, 100) virtual milliseconds. *)
let latency t = 10.0 +. (90.0 *. Prng.float t.rng)

(* The chaos delay factor of a link (0 without chaos): a deterministic
   multiplier applied after the latency draw, so it stretches the benign
   schedule without consuming randomness. *)
let delay_factor t ~src ~dst =
  match t.chaos with
  | None -> 1.0
  | Some { spec; _ } -> 1.0 +. (link_fault_for spec ~src ~dst).delay

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.slots then invalid_arg "Sim.send";
  Metrics.incr_sent t.metrics ~bytes:(t.size msg);
  let env =
    { seq = t.seq; src; dst; msg;
      ready_at = t.clock +. (latency t *. delay_factor t ~src ~dst);
      dup = false }
  in
  t.seq <- t.seq + 1;
  t.pending <- env :: t.pending

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst msg
  done

let set_timer t party ~delay callback =
  (* A crashed party schedules nothing: without this guard, a callback
     registered after the crash (e.g. by link-layer state the protocol
     left behind) would keep the network non-quiescent forever. *)
  if not t.crashed.(party) then
    t.timers <- (t.clock +. delay, party, callback) :: t.timers

let fire_due_timers t =
  let due, rest = List.partition (fun (d, _, _) -> d <= t.clock) t.timers in
  t.timers <- rest;
  List.iter
    (fun (d, party, cb) ->
      if not t.crashed.(party) then begin
        if t.tracer <> None then
          t.trace <- Timer_fired { at = d; party } :: t.trace;
        Obs.point t.obs ~party ~layer:"sim" "timer";
        cb ()
      end)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) due)

let pending_count t = List.length t.pending
let timer_count t = List.length t.timers

(* Partition gating: an envelope is held back while an active window
   separates its endpoints at its would-be delivery time. *)
let env_release t (e : 'msg envelope) : float =
  let tau = Float.max t.clock e.ready_at in
  match t.chaos with
  | None -> tau
  | Some { spec; _ } -> release_at spec ~src:e.src ~dst:e.dst tau

let env_blocked t e = env_release t e > Float.max t.clock e.ready_at

(* Pick the index (into [t.pending]) of the next envelope to deliver.
   The scheduling policy only ever chooses among envelopes not held back
   by a partition; when every pending message is blocked, [None] is
   returned and [do_step] advances the clock to the next unblock or
   timer deadline instead of delivering (so open-ended windows are fine:
   timers keep firing behind the cut, and a network that can never heal
   and has no timers simply quiesces). *)
let choose t : int option =
  match t.pending with
  | [] -> None
  | pending ->
    let all = List.mapi (fun i e -> (i, e)) pending in
    let eligible =
      if t.chaos = None then all
      else List.filter (fun (_, e) -> not (env_blocked t e)) all
    in
    (match eligible with
    | [] -> None
    | cands ->
      (match t.policy with
      | Fifo ->
        (* pending is newest-first; FIFO delivers the oldest eligible *)
        Some (fst (List.nth cands (List.length cands - 1)))
      | Random_order ->
        Some (fst (List.nth cands (Prng.int t.rng (List.length cands))))
      | Latency_order ->
        let best = ref 0 and best_t = ref infinity in
        List.iter
          (fun (i, e) ->
            if e.ready_at < !best_t then begin
              best := i;
              best_t := e.ready_at
            end)
          cands;
        Some !best
      | Delay_victims victims ->
        let touched e = Pset.mem e.src victims || Pset.mem e.dst victims in
        let free = List.filter (fun (_, e) -> not (touched e)) cands in
        (match free with
        | [] -> Some (fst (List.nth cands (List.length cands - 1)))
        | _ ->
          let k = Prng.int t.rng (List.length free) in
          Some (fst (List.nth free k)))))

(* Under [Delay_victims], the adversary also out-waits timeouts: when
   only victim traffic remains and a timer is pending, virtual time jumps
   past the earliest deadline before any victim message is released.
   This is exactly the paper's Section 2.2 attack — "the adversary may
   simply delay the communication with a server longer than the timeout
   and the server appears faulty to the others". *)
let adversary_outwaits_timer t : bool =
  match t.policy with
  | Fifo | Random_order | Latency_order -> false
  | Delay_victims victims ->
    t.timers <> []
    && t.pending <> []
    && List.for_all
         (fun e -> Pset.mem e.src victims || Pset.mem e.dst victims)
         t.pending

let remove_nth l k =
  let rec go i acc = function
    | [] -> invalid_arg "Sim.remove_nth"
    | x :: rest ->
      if i = k then (x, List.rev_append acc rest) else go (i + 1) (x :: acc) rest
  in
  go 0 [] l

(* The single choke point for every kind of non-delivery, so all drop
   paths count, trace and observe identically (tagged with the reason). *)
let drop_env t reason (env : 'msg envelope) =
  Metrics.incr_drops t.metrics;
  if reason = Chaos then Metrics.incr_chaos_drops t.metrics;
  if t.tracer <> None then
    t.trace <-
      Dropped { at = t.clock; src = env.src; dst = env.dst; reason } :: t.trace;
  Obs.point t.obs ~party:env.dst ~src:env.src ~layer:"sim"
    ~tag:(drop_reason_label reason) "drop"

let deliver_env t (env : 'msg envelope) =
  if t.crashed.(env.dst) then drop_env t Crashed env
  else
    match t.handlers.(env.dst) with
    | None -> drop_env t No_handler env
    | Some h ->
      Metrics.incr_deliveries t.metrics;
      (match t.tracer with
      | Some summarize ->
        t.trace <-
          Delivered
            { at = t.clock; src = env.src; dst = env.dst;
              summary = summarize env.msg }
          :: t.trace
      | None -> ());
      h ~src:env.src env.msg

(* Remove envelope [k] from the queue and put it through the chaos
   pipeline (defer / drop / duplicate) and delivery, advancing the clock
   to its release time first. *)
let deliver_pending t k : unit =
  let env, rest = remove_nth t.pending k in
  t.pending <- rest;
  t.clock <- max t.clock (env_release t env);
  fire_due_timers t;
  match t.chaos with
  | None -> deliver_env t env
  | Some { spec; crng } ->
    let lf = link_fault_for spec ~src:env.src ~dst:env.dst in
    (* Defer: push the chosen message back with a fresh latency — an
       extra reordering knob on top of the scheduling policy.  Only
       when other traffic is pending, so a lone message cannot be
       deferred forever. *)
    if lf.reorder > 0.0 && t.pending <> [] && Prng.float crng < lf.reorder then begin
      Metrics.incr_chaos_reorders t.metrics;
      t.pending <-
        { env with
          ready_at = t.clock +. (latency t *. (1.0 +. lf.delay)) }
        :: t.pending
    end
    else if lf.drop > 0.0 && Prng.float crng < lf.drop then
      drop_env t Chaos env
    else begin
      if
        lf.duplicate > 0.0 && (not env.dup)
        && Prng.float crng < lf.duplicate
      then begin
        Metrics.incr_chaos_dups t.metrics;
        Metrics.incr_sent t.metrics ~bytes:(t.size env.msg);
        t.pending <-
          { env with
            seq = t.seq;
            ready_at = t.clock +. (latency t *. (1.0 +. lf.delay));
            dup = true }
          :: t.pending;
        t.seq <- t.seq + 1
      end;
      deliver_env t env
    end

(* Deliver one message.  Returns false when the network is quiescent. *)
let do_step t : bool =
  if adversary_outwaits_timer t then begin
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) t.timers with
    | [] -> assert false
    | (d, _, _) :: _ ->
      t.clock <- max t.clock d;
      fire_due_timers t;
      true
  end
  else
  match choose t with
  | Some k ->
    deliver_pending t k;
    true
  | None when t.pending = [] ->
    (* No traffic: advance time to the next timer, if any. *)
    (match List.sort (fun (a, _, _) (b, _, _) -> compare a b) t.timers with
    | [] -> false
    | (d, _, _) :: _ ->
      t.clock <- max t.clock d;
      fire_due_timers t;
      true)
  | None ->
    (* Every pending message is behind a partition.  The step becomes a
       clock advance to the next unblock or timer deadline: when a timer
       fires strictly before the earliest cut heals, virtual time jumps
       only to the deadline (protocols keep retransmitting and probing
       behind the cut instead of sleeping until the heal); otherwise the
       earliest-healing envelope goes through, jumping past the heal.
       With every window open-ended and no timers left the network is
       dead — quiesce rather than crash or spin. *)
    let next_timer =
      List.fold_left (fun acc (d, _, _) -> Float.min acc d) infinity t.timers
    in
    let best = ref (-1) and best_t = ref infinity in
    List.iteri
      (fun i e ->
        let r = env_release t e in
        if r < !best_t then begin
          best := i;
          best_t := r
        end)
      t.pending;
    if next_timer < !best_t then begin
      t.clock <- Float.max t.clock next_timer;
      fire_due_timers t;
      true
    end
    else if !best >= 0 then begin
      deliver_pending t !best;
      true
    end
    else false

let step t : bool =
  let progressed = do_step t in
  if progressed then t.steps_total <- t.steps_total + 1;
  progressed

exception
  Out_of_steps of {
    at_clock : float;
    pending : int;
    timers : int;
    detail : string;
  }

(* Run until [until ()] holds or the network is quiescent; raises
   [Out_of_steps] — carrying the clock, pending-message count, live
   timer count and the stall probe's protocol-level diagnostics (e.g.
   per-round in-flight counts of a pipelined atomic broadcast) — if the
   bound is exceeded first. *)
let run ?(max_steps = 2_000_000) ?(until = fun () -> false) t : unit =
  let steps = ref 0 in
  let rec go () =
    if until () then ()
    else if !steps >= max_steps then
      raise
        (Out_of_steps
           { at_clock = t.clock;
             pending = List.length t.pending;
             timers = List.length t.timers;
             detail =
               (match t.stall_probe with
               | None -> ""
               | Some probe -> ( try probe () with _ -> "")) })
    else begin
      incr steps;
      if step t then go () else ()
    end
  in
  go ();
  (* One observation per completed run: the histogram sum is the total
     virtual time across every sim an experiment drives. *)
  if Obs.active t.obs then
    Obs.observe t.obs ~labels:[ ("layer", "sim") ] "virtual_time" t.clock
