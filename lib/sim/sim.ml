(* Discrete-event simulator of an asynchronous network under adversarial
   scheduling.

   The model of the paper, Section 2: a static set of servers linked by
   asynchronous authenticated point-to-point channels, where the
   adversary controls the order (and, within the run, the timing) of all
   message deliveries and fully controls corrupted parties.  "The network
   is the adversary": the scheduling policy *is* the adversary's
   strategy, so safety/liveness claims become testable by quantifying
   over seeds and policies.

   Virtual time exists only to (a) drive the latency model of the benign
   scheduler and (b) let timeout-based baselines (the CL99-style
   deterministic protocol) express their failure detectors; the
   randomized protocols of the architecture never read the clock. *)

type party = int

type 'msg envelope = {
  seq : int;
  src : party;
  dst : party;
  msg : 'msg;
  ready_at : float;  (* earliest "benign" delivery time *)
}

type policy =
  | Fifo  (** deliver in send order *)
  | Random_order  (** uniformly random pending message *)
  | Latency_order  (** benign WAN: deliver by ready_at *)
  | Delay_victims of Pset.t
      (** adversarial: messages from/to the victim set are delivered only
          when nothing else is pending *)

type 'msg handler = src:party -> 'msg -> unit

(* Optional event trace, for debugging and the CLI's --trace output. *)
type trace_event =
  | Delivered of { at : float; src : party; dst : party; summary : string }
  | Dropped of { at : float; src : party; dst : party }
  | Timer_fired of { at : float; party : party }

type 'msg t = {
  n : int;  (* servers are parties 0 .. n-1; higher ids are clients *)
  slots : int;
  rng : Prng.t;
  mutable policy : policy;
  mutable clock : float;
  mutable seq : int;
  mutable pending : 'msg envelope list;  (* newest first *)
  handlers : 'msg handler option array;
  crashed : bool array;
  mutable timers : (float * party * (unit -> unit)) list;
  metrics : Metrics.t;
  size : 'msg -> int;
  obs : Obs.t;
  mutable tracer : ('msg -> string) option;
  mutable trace : trace_event list;  (* newest first *)
}

let create ?(policy = Random_order) ?(extra = 8) ?(size = fun _ -> 1)
    ?(obs = Obs.noop) ~n ~seed () : 'msg t =
  { n;
    slots = n + extra;
    rng = Prng.create ~seed;
    policy;
    clock = 0.0;
    seq = 0;
    pending = [];
    handlers = Array.make (n + extra) None;
    crashed = Array.make (n + extra) false;
    timers = [];
    metrics = Metrics.create ~obs ();
    size;
    obs;
    tracer = None;
    trace = [] }

let n t = t.n
let clock t = t.clock
let metrics t = t.metrics
let obs t = t.obs
let set_policy t p = t.policy <- p

let set_handler t party (h : 'msg handler) =
  if party < 0 || party >= t.slots then invalid_arg "Sim.set_handler";
  t.handlers.(party) <- Some h

let enable_trace t ~summarize = t.tracer <- Some summarize
let trace t = List.rev t.trace

let crash t party = t.crashed.(party) <- true
let is_crashed t party = t.crashed.(party)

(* Random per-message WAN latency in [10, 100) virtual milliseconds. *)
let latency t = 10.0 +. (90.0 *. Prng.float t.rng)

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.slots then invalid_arg "Sim.send";
  Metrics.incr_sent t.metrics ~bytes:(t.size msg);
  let env =
    { seq = t.seq; src; dst; msg; ready_at = t.clock +. latency t }
  in
  t.seq <- t.seq + 1;
  t.pending <- env :: t.pending

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst msg
  done

let set_timer t party ~delay callback =
  t.timers <- (t.clock +. delay, party, callback) :: t.timers

let fire_due_timers t =
  let due, rest = List.partition (fun (d, _, _) -> d <= t.clock) t.timers in
  t.timers <- rest;
  List.iter
    (fun (d, party, cb) ->
      if not t.crashed.(party) then begin
        if t.tracer <> None then
          t.trace <- Timer_fired { at = d; party } :: t.trace;
        Obs.point t.obs ~party ~layer:"sim" "timer";
        cb ()
      end)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) due)

let pending_count t = List.length t.pending

(* Pick the index (into [t.pending]) of the next envelope to deliver. *)
let choose t : int option =
  let len = List.length t.pending in
  if len = 0 then None
  else
    match t.policy with
    | Fifo ->
      (* pending is newest-first; FIFO delivers the oldest *)
      Some (len - 1)
    | Random_order -> Some (Prng.int t.rng len)
    | Latency_order ->
      let best = ref 0 and best_t = ref infinity in
      List.iteri
        (fun i e -> if e.ready_at < !best_t then begin best := i; best_t := e.ready_at end)
        t.pending;
      Some !best
    | Delay_victims victims ->
      let touched e = Pset.mem e.src victims || Pset.mem e.dst victims in
      let free =
        List.mapi (fun i e -> (i, e)) t.pending
        |> List.filter (fun (_, e) -> not (touched e))
      in
      (match free with
      | [] -> Some (len - 1)  (* only victim traffic left: oldest first *)
      | _ ->
        let k = Prng.int t.rng (List.length free) in
        Some (fst (List.nth free k)))

(* Under [Delay_victims], the adversary also out-waits timeouts: when
   only victim traffic remains and a timer is pending, virtual time jumps
   past the earliest deadline before any victim message is released.
   This is exactly the paper's Section 2.2 attack — "the adversary may
   simply delay the communication with a server longer than the timeout
   and the server appears faulty to the others". *)
let adversary_outwaits_timer t : bool =
  match t.policy with
  | Fifo | Random_order | Latency_order -> false
  | Delay_victims victims ->
    t.timers <> []
    && t.pending <> []
    && List.for_all
         (fun e -> Pset.mem e.src victims || Pset.mem e.dst victims)
         t.pending

let remove_nth l k =
  let rec go i acc = function
    | [] -> invalid_arg "Sim.remove_nth"
    | x :: rest ->
      if i = k then (x, List.rev_append acc rest) else go (i + 1) (x :: acc) rest
  in
  go 0 [] l

(* Deliver one message.  Returns false when the network is quiescent. *)
let step t : bool =
  if adversary_outwaits_timer t then begin
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) t.timers with
    | [] -> assert false
    | (d, _, _) :: _ ->
      t.clock <- max t.clock d;
      fire_due_timers t;
      true
  end
  else
  match choose t with
  | None ->
    (* No traffic: advance time to the next timer, if any. *)
    (match List.sort (fun (a, _, _) (b, _, _) -> compare a b) t.timers with
    | [] -> false
    | (d, _, _) :: _ ->
      t.clock <- max t.clock d;
      fire_due_timers t;
      true)
  | Some k ->
    let env, rest = remove_nth t.pending k in
    t.pending <- rest;
    t.clock <- max t.clock env.ready_at;
    fire_due_timers t;
    if t.crashed.(env.dst) then begin
      Metrics.incr_drops t.metrics;
      if t.tracer <> None then
        t.trace <- Dropped { at = t.clock; src = env.src; dst = env.dst } :: t.trace;
      Obs.point t.obs ~party:env.dst ~src:env.src ~layer:"sim" "drop"
    end
    else begin
      match t.handlers.(env.dst) with
      | None -> Metrics.incr_drops t.metrics
      | Some h ->
        Metrics.incr_deliveries t.metrics;
        (match t.tracer with
        | Some summarize ->
          t.trace <-
            Delivered
              { at = t.clock; src = env.src; dst = env.dst;
                summary = summarize env.msg }
            :: t.trace
        | None -> ());
        h ~src:env.src env.msg
    end;
    true

exception Out_of_steps

(* Run until [until ()] holds or the network is quiescent; raises
   [Out_of_steps] if the bound is exceeded while traffic remains. *)
let run ?(max_steps = 2_000_000) ?(until = fun () -> false) t : unit =
  let steps = ref 0 in
  let rec go () =
    if until () then ()
    else if !steps >= max_steps then raise Out_of_steps
    else begin
      incr steps;
      if step t then go () else ()
    end
  in
  go ();
  (* One observation per completed run: the histogram sum is the total
     virtual time across every sim an experiment drives. *)
  if Obs.active t.obs then
    Obs.observe t.obs ~labels:[ ("layer", "sim") ] "virtual_time" t.clock
