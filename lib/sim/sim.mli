(** Discrete-event simulator of an asynchronous network under adversarial
    scheduling — the paper's Section 2 model, where "the network is the
    adversary": the scheduling policy is the adversary's strategy, which
    makes liveness and safety claims testable by quantifying over seeds
    and policies.

    Virtual time exists only to drive the benign latency model and the
    timers of timeout-based baselines; the randomized protocols never
    read the clock. *)

type party = int

type policy =
  | Fifo  (** deliver in send order *)
  | Random_order  (** uniformly random pending message *)
  | Latency_order  (** benign WAN: deliver by simulated latency *)
  | Delay_victims of Pset.t
      (** adversarial: traffic from/to the victims is delivered only when
          nothing else is pending, and pending timers are out-waited
          first — the Section 2.2 "delay longer than the timeout"
          attack *)

type 'msg handler = src:party -> 'msg -> unit

(** Optional event trace, for debugging and CLI inspection. *)
type trace_event =
  | Delivered of { at : float; src : party; dst : party; summary : string }
  | Dropped of { at : float; src : party; dst : party }
  | Timer_fired of { at : float; party : party }

type 'msg t

val create :
  ?policy:policy ->
  ?extra:int ->
  ?size:('msg -> int) ->
  ?obs:Obs.t ->
  n:int ->
  seed:int ->
  unit ->
  'msg t
(** [n] server slots plus [extra] client slots (default 8); [size]
    estimates wire bytes for the metrics.  [obs] (default [Obs.noop])
    receives a registry mirror of the metrics under layer ["sim"] plus
    drop/timer points when a tracer is installed; protocol layers built
    on this simulator pick it up through {!obs}. *)

val n : 'msg t -> int
val clock : 'msg t -> float
val metrics : 'msg t -> Metrics.t

val obs : 'msg t -> Obs.t
(** The observability handle passed at creation ([Obs.noop] when none). *)

val set_policy : 'msg t -> policy -> unit

val set_handler : 'msg t -> party -> 'msg handler -> unit
(** Attach (or replace — e.g. with a Byzantine behaviour) the message
    handler of a slot. *)

val enable_trace : 'msg t -> summarize:('msg -> string) -> unit
(** Start recording {!trace_event}s; [summarize] renders each message. *)

val trace : 'msg t -> trace_event list
(** Recorded events, oldest first. *)

val crash : 'msg t -> party -> unit
(** All subsequent deliveries to the party are dropped. *)

val is_crashed : 'msg t -> party -> bool

val send : 'msg t -> src:party -> dst:party -> 'msg -> unit
val broadcast : 'msg t -> src:party -> 'msg -> unit
(** To every server slot (0..n-1), including [src]. *)

val set_timer : 'msg t -> party -> delay:float -> (unit -> unit) -> unit
(** One-shot virtual-time timer (not fired for crashed parties). *)

val pending_count : 'msg t -> int

val step : 'msg t -> bool
(** Deliver one message / fire due timers; [false] when quiescent. *)

exception Out_of_steps

val run : ?max_steps:int -> ?until:(unit -> bool) -> 'msg t -> unit
(** Step until [until ()] holds or the network is quiescent; raises
    {!Out_of_steps} if the bound (default 2,000,000) is hit first. *)
