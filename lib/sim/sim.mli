(** Discrete-event simulator of an asynchronous network under adversarial
    scheduling — the paper's Section 2 model, where "the network is the
    adversary": the scheduling policy is the adversary's strategy, which
    makes liveness and safety claims testable by quantifying over seeds
    and policies.

    On top of the scheduling policy, an optional {!chaos} specification
    injects link-level faults (probabilistic drop / duplication /
    deferral with per-link rates) and timed partition schedules, all
    drawn from a PRNG split off the simulator's seed, so faulty runs are
    exactly as reproducible as benign ones.  Probabilistic drops step
    outside the paper's reliable-channel model: under a lossy spec only
    safety claims remain meaningful (see lib/faults).

    Virtual time exists only to drive the benign latency model and the
    timers of timeout-based baselines; the randomized protocols never
    read the clock. *)

type party = int

type policy =
  | Fifo  (** deliver in send order *)
  | Random_order  (** uniformly random pending message *)
  | Latency_order  (** benign WAN: deliver by simulated latency *)
  | Delay_victims of Pset.t
      (** adversarial: traffic from/to the victims is delivered only when
          nothing else is pending, and pending timers are out-waited
          first — the Section 2.2 "delay longer than the timeout"
          attack *)

(** {2 Chaos: link faults and partition schedules} *)

type link_fault = {
  drop : float;  (** P(a delivery attempt silently loses the message) *)
  duplicate : float;
      (** P(a second copy is enqueued with fresh latency); duplicates are
          never duplicated again, so amplification is bounded *)
  reorder : float;
      (** P(the chosen message is pushed back with fresh latency instead
          of being delivered) — extra reordering beyond the policy; a
          lone pending message is never deferred *)
  delay : float;
      (** extra latency as a multiplier: every latency drawn on this
          link becomes [latency * (1 + delay)].  Deterministic (no PRNG
          draw), in [0, 1000]; 0 reproduces prior schedules
          bit-for-bit.  The adversarial schedule search climbs over this
          knob together with the probabilistic rates. *)
}

val no_fault : link_fault
(** All rates zero. *)

type partition = {
  from_t : float;  (** virtual-time start of the cut *)
  until_t : float;  (** heal time (window is [\[from_t, until_t)]) *)
  cells : Pset.t list;
      (** parties in different cells cannot exchange messages while the
          window is active; parties listed in no cell share one implicit
          cell *)
}

type chaos = {
  default_link : link_fault;  (** applied to every (src, dst) pair *)
  links : ((party * party) * link_fault) list;  (** per-link overrides *)
  partitions : partition list;
}

val benign_chaos : chaos
(** No faults, no partitions — the identity spec to extend. *)

type 'msg handler = src:party -> 'msg -> unit

type drop_reason =
  | Crashed  (** destination crashed *)
  | No_handler  (** destination slot has no handler installed *)
  | Chaos  (** probabilistic chaos drop *)

val drop_reason_label : drop_reason -> string
(** ["crashed"], ["no-handler"], ["chaos"] — also the [tag] of the
    ["drop"] observability point every drop path emits. *)

(** Optional event trace, for debugging and CLI inspection. *)
type trace_event =
  | Delivered of { at : float; src : party; dst : party; summary : string }
  | Dropped of { at : float; src : party; dst : party; reason : drop_reason }
  | Timer_fired of { at : float; party : party }

type 'msg t

val create :
  ?policy:policy ->
  ?extra:int ->
  ?size:('msg -> int) ->
  ?obs:Obs.t ->
  n:int ->
  seed:int ->
  unit ->
  'msg t
(** [n] server slots plus [extra] client slots (default 8); [size]
    estimates wire bytes for the metrics.  [obs] (default [Obs.noop])
    receives a registry mirror of the metrics under layer ["sim"] plus
    drop/timer points when a tracer is installed; protocol layers built
    on this simulator pick it up through {!obs}. *)

val n : 'msg t -> int
val clock : 'msg t -> float
val metrics : 'msg t -> Metrics.t

val obs : 'msg t -> Obs.t
(** The observability handle passed at creation ([Obs.noop] when none). *)

val steps : 'msg t -> int
(** Completed steps (deliveries / timer advances) over the simulator's
    lifetime — the denominator of throughput-per-step measurements. *)

val set_policy : 'msg t -> policy -> unit

val set_stall_probe : 'msg t -> (unit -> string) -> unit
(** Install a protocol-level diagnostics probe: its output becomes the
    [detail] of {!Out_of_steps} when a run exceeds its step bound (e.g.
    per-round in-flight counts of a pipelined atomic broadcast —
    {!Stack.deploy_abc} installs one).  Exceptions in the probe are
    swallowed; the last installed probe wins. *)

val set_chaos : 'msg t -> chaos option -> unit
(** Install (or clear) the chaos specification.  The fault PRNG is split
    off the scheduler's PRNG at installation time, so fault draws do not
    perturb the delivery schedule.  Raises [Invalid_argument] on rates
    outside [0, 1] or empty partition windows. *)

val set_handler : 'msg t -> party -> 'msg handler -> unit
(** Attach (or replace — e.g. with a Byzantine behaviour) the message
    handler of a slot.  Raises [Invalid_argument] on a crashed slot:
    re-arming delivery while the crash flag still suppresses timers
    would create a zombie, so the lifecycle is explicit — {!recover}
    first, then install the fresh handler. *)

val wrap_handler :
  'msg t -> party -> ('msg handler -> 'msg handler) -> unit
(** Replace a slot's handler with a wrapper of the currently installed
    one (a no-op handler when none is installed) — the hook the
    Byzantine behaviour library uses to corrupt a deployed party while
    keeping its honest logic callable. *)

val enable_trace : 'msg t -> summarize:('msg -> string) -> unit
(** Start recording {!trace_event}s; [summarize] renders each message. *)

val trace : 'msg t -> trace_event list
(** Recorded events, oldest first. *)

val crash : 'msg t -> party -> unit
(** All subsequent deliveries to the party are dropped, its pending
    timers are purged, and later {!set_timer} calls for it are inert. *)

val is_crashed : 'msg t -> party -> bool

val recover : 'msg t -> party -> unit
(** Un-crash a party.  The slot comes back amnesiac: the crash purged
    its timers and recovery drops its handler, so nothing of the old
    incarnation can fire; install a fresh handler (and run whatever
    catch-up protocol the stack provides) before the party participates
    again.  Messages dropped while it was down stay dropped.  Raises
    [Invalid_argument] if the party is not crashed. *)

val send : 'msg t -> src:party -> dst:party -> 'msg -> unit
val broadcast : 'msg t -> src:party -> 'msg -> unit
(** To every server slot (0..n-1), including [src]. *)

val set_timer : 'msg t -> party -> delay:float -> (unit -> unit) -> unit
(** One-shot virtual-time timer.  A no-op for crashed parties, and a
    party's crash purges whatever timers it had pending. *)

val pending_count : 'msg t -> int

val timer_count : 'msg t -> int
(** Timers set but not yet fired. *)

val step : 'msg t -> bool
(** Deliver one message / fire due timers; [false] when quiescent. *)

exception
  Out_of_steps of {
    at_clock : float;
    pending : int;
    timers : int;
    detail : string;
  }
(** The step bound was exceeded while traffic remained: carries the
    virtual clock, pending-message count, live timer count and the
    stall probe's diagnostics ([""] when no probe is installed) at the
    stall, so stuck runs are debuggable. *)

val run : ?max_steps:int -> ?until:(unit -> bool) -> 'msg t -> unit
(** Step until [until ()] holds or the network is quiescent; raises
    {!Out_of_steps} if the bound (default 2,000,000) is hit first. *)
