(* Test entry point: one alcotest run covering every library layer, from
   the bignum substrate to the trusted services and the Section 6
   extensions.  All suites are deterministic (seeded PRNG, seeded
   simulator), so failures are always reproducible. *)

let () =
  Alcotest.run "sintra"
    [ Test_obs.suite;
      Test_num.suite;
      Test_hash.suite;
      Test_group.suite;
      Test_sharing.suite;
      Test_crypto.suite;
      Test_crypto_scale.suite;
      Test_protocols.suite;
      Test_baseline.suite;
      Test_membership.suite;
      Test_services.suite;
      Test_services2.suite;
      Test_extensions.suite;
      Test_optimistic.suite;
      Test_misc.suite;
      Test_adversarial.suite;
      Test_faults.suite;
      Test_flight.suite;
      Test_throughput.suite;
      Test_fuzz.suite;
      Test_link.suite ]
