(* Focused Byzantine behaviours against each protocol layer, exercising
   exactly the robustness mechanisms the paper's model demands: forged
   crypto shares must be filtered by their validity proofs, equivocation
   must be caught by quorum intersection, and unjustified votes must be
   rejected by the certificate checks.  Also: DRBG tests. *)

module AS = Adversary_structure
module G = Schnorr_group

let ps = G.default ~bits:96 ()
let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

(* ---------------- DRBG ------------------------------------------------ *)

let drbg_tests =
  [ Alcotest.test_case "drbg deterministic and seed-separated" `Quick
      (fun () ->
        let a = Drbg.create ~seed:"s1" ~personalization:"p" in
        let b = Drbg.create ~seed:"s1" ~personalization:"p" in
        let c = Drbg.create ~seed:"s2" ~personalization:"p" in
        let d = Drbg.create ~seed:"s1" ~personalization:"q" in
        let xa = Drbg.bytes a 64 and xb = Drbg.bytes b 64 in
        Alcotest.(check bool) "same seed same stream" true (xa = xb);
        Alcotest.(check bool) "different seed differs" false
          (xa = Drbg.bytes c 64);
        Alcotest.(check bool) "different personalization differs" false
          (xa = Drbg.bytes d 64));
    Alcotest.test_case "drbg ratchets (no block repeats)" `Quick (fun () ->
        let t = Drbg.of_int_seed 5 in
        let blocks = List.init 50 (fun _ -> Drbg.block t) in
        Alcotest.(check int) "all distinct" 50
          (List.length (List.sort_uniq compare blocks)));
    Alcotest.test_case "drbg reseed changes the stream" `Quick (fun () ->
        let a = Drbg.of_int_seed 6 and b = Drbg.of_int_seed 6 in
        ignore (Drbg.bytes a 32);
        ignore (Drbg.bytes b 32);
        Drbg.reseed a ~entropy:"fresh";
        Alcotest.(check bool) "diverged" false (Drbg.bytes a 32 = Drbg.bytes b 32));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:50 ~name:"drbg bignum_below in range"
         QCheck2.Gen.(pair (int_range 1 1000000) int)
         (fun (bound, seed) ->
           let t = Drbg.of_int_seed seed in
           let b = Bignum.of_int bound in
           let v = Drbg.bignum_below t b in
           Bignum.sign v >= 0 && Bignum.lt v b))
  ]

(* ---------------- forged crypto shares in protocols ------------------- *)

let forged_share_tests =
  [ Alcotest.test_case "abba: forged coin shares are filtered, run completes"
      `Quick (fun () ->
        (* party 3 sends coin shares with broken proofs every time it
           receives anything; honest parties must reject them and still
           terminate using the honest shares *)
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:808 () in
        let decisions = Array.make 4 None in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr ~tag:"forged-coin"
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        let forged_share r =
          (* a structurally valid share list with garbage values *)
          let honest = Coin.generate_share kr.Keyring.coin ~party:3
              ~name:(Ro.encode [ "abba-coin"; "forged-coin"; string_of_int r ])
          in
          List.map
            (fun (s : Coin.share) ->
              { s with Coin.value = G.mul ps s.Coin.value ps.G.g })
            honest
        in
        let spams = ref 0 in
        Sim.set_handler sim 3 (fun ~src:_ (_ : Abba.msg Link.frame) ->
            if !spams < 25 then begin
              incr spams;
              for dst = 0 to 3 do
                Sim.send sim ~src:3 ~dst
                  (Link.Raw (Abba.Coin_share (1, forged_share 1)))
              done
            end);
        Array.iteri
          (fun i node -> if i < 3 then Abba.propose node (i mod 2 = 0))
          nodes;
        Sim.run sim;
        let ds = List.filter_map (fun i -> decisions.(i)) [ 0; 1; 2 ] in
        Alcotest.(check int) "all honest decided" 3 (List.length ds);
        (match ds with
        | d :: rest ->
          List.iter (fun d' -> Alcotest.(check bool) "agree" true (d = d')) rest
        | [] -> ()));
    Alcotest.test_case "abba: unjustified mainvote is ignored" `Quick
      (fun () ->
        (* a Byzantine party claims Value true with a bogus certificate;
           honest parties must not be influenced when all propose false *)
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:809 () in
        let decisions = Array.make 4 None in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr ~tag:"unjust"
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        Sim.set_handler sim 3 (fun ~src:_ (_ : Abba.msg Link.frame) -> ());
        (* forge: a mainvote Value true with a vector cert signed over the
           WRONG statement (the complaint statement) *)
        let bogus_cert =
          Keyring.Vector_cert
            (List.map (fun p -> (p, Keyring.sign kr ~party:p "nonsense")) [ 0; 1; 2 ])
        in
        let share =
          Keyring.cert_share kr ~party:3
            (Ro.encode [ "abba-main"; "unjust"; "1"; "true" ])
        in
        for dst = 0 to 2 do
          Sim.send sim ~src:3 ~dst
            (Link.Raw
               (Abba.Mainvote
                  { Abba.mv_round = 1;
                    mv_value = Abba.Value true;
                    mv_just = Abba.J_quorum bogus_cert;
                    mv_share = share }))
        done;
        Array.iteri (fun i node -> if i < 3 then Abba.propose node false) nodes;
        Sim.run sim;
        List.iter
          (fun i ->
            Alcotest.(check (option bool)) "decides false despite forgery"
              (Some false) decisions.(i))
          [ 0; 1; 2 ]);
    Alcotest.test_case "scabc: forged decryption shares do not break delivery"
      `Quick (fun () ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:810 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_scabc ~sim ~keyring:kr ~tag:"forged-dec"
            ~deliver:(fun me ~label:_ p -> logs.(me) <- p :: logs.(me)) ()
        in
        (* party 3 behaves honestly except it garbles its decryption
           shares (flips the group element) *)
        let honest = fun ~src m -> Scabc.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src frame ->
            match Link.payload frame with
            | Some (Scabc.Dec_share (d, shares)) when src = 3 ->
              let bad =
                List.map
                  (fun (s : Tdh2.dec_share) ->
                    { s with Tdh2.value = G.mul ps s.Tdh2.value ps.G.g })
                  shares
              in
              honest ~src (Scabc.Dec_share (d, bad))
            | Some m -> honest ~src m
            | None -> ());
        let rng = Prng.create ~seed:4 in
        let ct = Scabc.encrypt_request kr rng ~label:"x" "still-secret" in
        Scabc.broadcast nodes.(0) ct;
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> logs.(i) <> []) [ 0; 1; 2 ]);
        List.iter
          (fun i ->
            Alcotest.(check (list string)) "decrypted from honest shares"
              [ "still-secret" ] logs.(i))
          [ 0; 1; 2 ])
  ]

(* ---------------- equivocation and replay ----------------------------- *)

let equivocation_tests =
  [ Alcotest.test_case "vba: equivocating proposer cannot split the decision"
      `Quick (fun () ->
        (* proposer 0 CBC-sends value "x" to parties 1,2 and "y" to 3;
           the consistent broadcast allows at most one certificate, so
           the agreement stays consistent *)
        List.iter
          (fun seed ->
            let kr = Lazy.force kr41 in
            let sim = Sim.create ~n:4 ~seed () in
            let results = Array.make 4 None in
            let nodes =
              Stack.deploy_vba ~sim ~keyring:kr
                ~tag:(Printf.sprintf "equiv-%d" seed)
                ~on_decide:(fun me ~winner v -> results.(me) <- Some (winner, v))
                ()
            in
            Sim.send sim ~src:0 ~dst:1
              (Link.Raw (Vba.Proposal_cbc (0, Cbc.Send "x")));
            Sim.send sim ~src:0 ~dst:2
              (Link.Raw (Vba.Proposal_cbc (0, Cbc.Send "x")));
            Sim.send sim ~src:0 ~dst:3
              (Link.Raw (Vba.Proposal_cbc (0, Cbc.Send "y")));
            Vba.propose nodes.(1) "v1";
            Vba.propose nodes.(2) "v2";
            Vba.propose nodes.(3) "v3";
            Sim.run sim;
            let decided = List.filter_map (fun i -> results.(i)) [ 1; 2; 3 ] in
            Alcotest.(check int) "honest decided" 3 (List.length decided);
            match decided with
            | (w, v) :: rest ->
              List.iter
                (fun (w', v') ->
                  Alcotest.(check int) "same winner" w w';
                  Alcotest.(check string) "same value" v v')
                rest
            | [] -> ())
          [ 910; 911; 912 ]);
    Alcotest.test_case "abc: replayed proposals from old rounds are harmless"
      `Quick (fun () ->
        (* a Byzantine party records a signed round-0 proposal and replays
           it in later rounds; the round-bound statement makes it invalid *)
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:920 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_abc ~sim ~keyring:kr ~tag:"replay"
            ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
        in
        (* capture party 3's honest handler and add replay behaviour *)
        let honest = fun ~src m -> Abc.handle nodes.(3) ~src m in
        let recorded = ref None in
        let replays = ref 0 in
        Sim.set_handler sim 3 (fun ~src frame ->
            match Link.payload frame with
            | None -> ()
            | Some m ->
              (match m with
              | Abc.Proposal (0, payload, sg) when !recorded = None ->
                recorded := Some (payload, sg)
              | _ -> ());
              (match !recorded with
              | Some (payload, sg) when !replays < 20 ->
                (* replay into round 1 under the original signature *)
                incr replays;
                for dst = 0 to 3 do
                  Sim.send sim ~src:3 ~dst
                    (Link.Raw (Abc.Proposal (1, payload, sg)))
                done
              | Some _ | None -> ());
              honest ~src m);
        Abc.broadcast nodes.(0) "r0-payload";
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> logs.(i) <> []) [ 0; 1; 2 ]);
        Abc.broadcast nodes.(1) "r1-payload";
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> List.length logs.(i) >= 2) [ 0; 1; 2 ]);
        List.iter
          (fun i ->
            Alcotest.(check (list string)) "order intact"
              (List.rev logs.(0)) (List.rev logs.(i));
            Alcotest.(check int) "nothing extra" 2 (List.length logs.(i)))
          [ 0; 1; 2 ]);
    Alcotest.test_case "pbft: byzantine prepare digests cannot corrupt a slot"
      `Quick (fun () ->
        (* a Byzantine replica sends PREPARE messages with a wrong digest;
           the quorum check counts only matching ones, so the slot commits
           the leader's payload or nothing *)
        let sim = Sim.create ~policy:Sim.Latency_order ~n:4 ~seed:930 () in
        let logs = Array.make 4 [] in
        let nodes =
          Baseline_stack.deploy ~sim ~f:1
            ~deliver:(fun me p -> logs.(me) <- p :: logs.(me))
            ()
        in
        let honest = fun ~src m -> Pbft_lite.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src m ->
            (match m with
            | Pbft_lite.Pre_prepare (v, seq, _) ->
              for dst = 0 to 3 do
                Sim.send sim ~src:3 ~dst
                  (Pbft_lite.Prepare (v, seq, Sha256.digest "evil"))
              done
            | _ -> ());
            honest ~src m);
        Pbft_lite.submit nodes.(0) "good-payload";
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> logs.(i) <> []) [ 0; 1; 2 ]);
        List.iter
          (fun i ->
            Alcotest.(check (list string)) "correct payload committed"
              [ "good-payload" ] logs.(i))
          [ 0; 1; 2 ])
  ]

let suite = ("adversarial", drbg_tests @ forged_share_tests @ equivocation_tests)
