(* PBFT-lite baseline tests: fast path, crash-of-leader view change,
   safety under random schedules, and the liveness failure under an
   adversarial scheduler that the paper's Figure 1 row for CL99
   predicts ("FD for liveness"). *)

let run_pbft ~seed ~policy ~crashed ~submissions ?(n = 4) ?(f = 1)
    ?(timeout = 2000.0) ?(max_steps = 200_000) () =
  let sim = Sim.create ~policy ~n ~seed () in
  let logs = Array.make n [] in
  let nodes =
    Baseline_stack.deploy ~sim ~f ~timeout
      ~deliver:(fun me payload -> logs.(me) <- payload :: logs.(me))
      ()
  in
  List.iter (Sim.crash sim) crashed;
  List.iter
    (fun (party, payload) ->
      if not (List.mem party crashed) then Pbft_lite.submit nodes.(party) payload)
    submissions;
  let honest =
    List.filter (fun i -> not (List.mem i crashed)) (List.init n Fun.id)
  in
  let expected =
    List.length (List.sort_uniq compare (List.map snd submissions))
  in
  (try
     Sim.run sim ~max_steps
       ~until:(fun () ->
         List.for_all (fun i -> List.length logs.(i) >= expected) honest)
   with Sim.Out_of_steps _ -> ());
  (Array.map List.rev logs, honest, nodes)

let check_prefix_consistent logs honest =
  (* Deterministic protocols may leave some replicas behind at cut-off;
     safety = delivered sequences are prefix-consistent. *)
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let a = logs.(i) and b = logs.(j) in
          let la = List.length a and lb = List.length b in
          let shorter, longer = if la < lb then (a, b) else (b, a) in
          let rec prefix s l =
            match (s, l) with
            | [], _ -> true
            | x :: s', y :: l' -> x = y && prefix s' l'
            | _ :: _, [] -> false
          in
          Alcotest.(check bool) "prefix consistency" true (prefix shorter longer))
        honest)
    honest

let tests =
  [ Alcotest.test_case "pbft: failure-free fast path delivers" `Quick
      (fun () ->
        let submissions = [ (0, "a"); (1, "b"); (2, "c") ] in
        let logs, honest, _ =
          run_pbft ~seed:1 ~policy:Sim.Latency_order ~crashed:[] ~submissions ()
        in
        List.iter
          (fun i ->
            Alcotest.(check int) "all delivered" 3 (List.length logs.(i)))
          honest;
        check_prefix_consistent logs honest);
    Alcotest.test_case "pbft: identical order across replicas" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let submissions =
              [ (0, "m1"); (1, "m2"); (2, "m3"); (3, "m4") ]
            in
            let logs, honest, _ =
              run_pbft ~seed ~policy:Sim.Random_order ~crashed:[] ~submissions ()
            in
            check_prefix_consistent logs honest)
          (List.init 8 (fun i -> 3000 + i)));
    Alcotest.test_case "pbft: leader crash triggers view change and recovery"
      `Quick (fun () ->
        (* leader of view 0 is party 0; crash it *)
        let submissions = [ (1, "survivor-1"); (2, "survivor-2") ] in
        let logs, honest, nodes =
          run_pbft ~seed:3100 ~policy:Sim.Latency_order ~crashed:[ 0 ]
            ~submissions ()
        in
        check_prefix_consistent logs honest;
        List.iter
          (fun i ->
            Alcotest.(check int) "delivered after view change" 2
              (List.length logs.(i));
            Alcotest.(check bool) "view advanced" true
              (Pbft_lite.current_view nodes.(i) >= 1))
          honest);
    Alcotest.test_case
      "pbft: adversarial leader-delay scheduler starves liveness" `Quick
      (fun () ->
        (* The scheduler always delays traffic touching the current
           leader rotation targets; the protocol keeps rotating views
           without delivering — but never violates safety.  This is the
           CL99 row of Figure 1 and experiment O1. *)
        let n = 4 in
        let sim = Sim.create ~policy:(Sim.Delay_victims (Pset.of_list [ 0 ])) ~n ~seed:3200 () in
        let logs = Array.make n [] in
        let nodes =
          Baseline_stack.deploy ~sim ~f:1 ~timeout:500.0
            ~deliver:(fun me payload -> logs.(me) <- payload :: logs.(me))
            ()
        in
        (* adapt the victim set to whoever is leader now *)
        let steps = ref 0 in
        Pbft_lite.submit nodes.(1) "starved-payload";
        (try
           Sim.run sim ~max_steps:6_000 ~until:(fun () ->
               incr steps;
               (* the adversary delays whichever leader each replica is
                  currently waiting on, so no leader ever makes progress *)
               let victims =
                 Array.fold_left
                   (fun acc node ->
                     Pset.add (Pbft_lite.current_view node mod n) acc)
                   Pset.empty nodes
               in
               Sim.set_policy sim (Sim.Delay_victims victims);
               Array.exists (fun l -> l <> []) logs)
         with Sim.Out_of_steps _ -> ());
        (* Liveness lost: nothing delivered within the budget, the
           request still pending... *)
        Array.iter
          (fun l -> Alcotest.(check (list string)) "no delivery" [] l)
          logs;
        Alcotest.(check bool) "request still pending" true
          (Array.exists (fun node -> Pbft_lite.pending node <> []) nodes);
        (* ...after at least one futile view change (safety intact:
           nothing was ever delivered, so nothing could diverge). *)
        Alcotest.(check bool) "views rotated" true
          (Array.exists (fun node -> Pbft_lite.current_view node >= 1) nodes));
    Alcotest.test_case
      "abc delivers under the same adversarial scheduler" `Quick (fun () ->
        (* Same adversary, randomized protocol: liveness survives. *)
        let kr =
          Keyring.deal ~rsa_bits:192 ~seed:1000
            (Adversary_structure.threshold ~n:4 ~t:1)
        in
        let sim =
          Sim.create ~policy:(Sim.Delay_victims (Pset.of_list [ 0 ])) ~n:4
            ~seed:3300 ()
        in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_abc ~sim ~keyring:kr ~tag:"abc-adv"
            ~deliver:(fun me payload -> logs.(me) <- payload :: logs.(me)) ()
        in
        Abc.broadcast nodes.(1) "must-go-through";
        Sim.run sim ~until:(fun () -> Array.for_all (fun l -> l <> []) logs);
        Array.iter
          (fun l ->
            Alcotest.(check (list string)) "delivered" [ "must-go-through" ] l)
          logs)
  ]

let suite = ("baseline", tests)
