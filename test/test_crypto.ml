(* Threshold-cryptography tests: DLEQ soundness/completeness, coin
   consistency and robustness, TDH2 round-trips and CCA checks, Shoup RSA
   threshold signatures, certificate signatures over generalized
   structures, and the keyring dealer. *)

module B = Bignum
module G = Schnorr_group
module AS = Adversary_structure

let ps = G.default ~bits:96 ()
let th43 = AS.threshold ~n:4 ~t:1
let th72 = AS.threshold ~n:7 ~t:2

let deal ?(seed = 42) structure =
  Dl_sharing.deal ps structure (Prng.create ~seed)

let qtest ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let dleq_tests =
  [ Alcotest.test_case "dleq completeness" `Quick (fun () ->
        let rng = Prng.create ~seed:1 in
        let x = G.random_exponent ps rng in
        let g2 = G.hash_to_elt ps ~domain:"t" [ "g2" ] in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 x in
        let proof = Dleq.prove ps ~domain:"d" ~x ~g1:ps.G.g ~h1 ~g2 ~h2 in
        Alcotest.(check bool) "verifies" true
          (Dleq.verify ps ~domain:"d" ~g1:ps.G.g ~h1 ~g2 ~h2 proof));
    Alcotest.test_case "dleq soundness: unequal logs rejected" `Quick
      (fun () ->
        let rng = Prng.create ~seed:2 in
        let x = G.random_exponent ps rng in
        let y = B.add_mod x B.one ps.G.q in
        let g2 = G.hash_to_elt ps ~domain:"t" [ "g2" ] in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 y (* wrong exponent *) in
        let proof = Dleq.prove ps ~domain:"d" ~x ~g1:ps.G.g ~h1 ~g2 ~h2 in
        Alcotest.(check bool) "rejected" false
          (Dleq.verify ps ~domain:"d" ~g1:ps.G.g ~h1 ~g2 ~h2 proof));
    Alcotest.test_case "dleq domain separation" `Quick (fun () ->
        let rng = Prng.create ~seed:3 in
        let x = G.random_exponent ps rng in
        let g2 = G.hash_to_elt ps ~domain:"t" [ "g2" ] in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 x in
        let proof = Dleq.prove ps ~domain:"d1" ~x ~g1:ps.G.g ~h1 ~g2 ~h2 in
        Alcotest.(check bool) "other domain rejects" false
          (Dleq.verify ps ~domain:"d2" ~g1:ps.G.g ~h1 ~g2 ~h2 proof));
    Alcotest.test_case "dleq rejects tampered statement" `Quick (fun () ->
        let rng = Prng.create ~seed:4 in
        let x = G.random_exponent ps rng in
        let g2 = G.hash_to_elt ps ~domain:"t" [ "g2" ] in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 x in
        let proof = Dleq.prove ps ~domain:"d" ~x ~g1:ps.G.g ~h1 ~g2 ~h2 in
        let h2' = G.mul ps h2 ps.G.g in
        Alcotest.(check bool) "tampered h2" false
          (Dleq.verify ps ~domain:"d" ~g1:ps.G.g ~h1 ~g2 ~h2:h2' proof))
  ]

let coin_tests =
  let sharing = deal th43 in
  let shares_for name =
    List.init 4 (fun i -> (i, Coin.generate_share sharing ~party:i ~name))
  in
  [ Alcotest.test_case "coin shares verify" `Quick (fun () ->
        List.iter
          (fun (i, ss) ->
            Alcotest.(check bool) "valid" true
              (Coin.verify_share sharing ~party:i ~name:"c1" ss))
          (shares_for "c1"));
    Alcotest.test_case "coin share for wrong name rejected" `Quick (fun () ->
        let ss = Coin.generate_share sharing ~party:0 ~name:"c1" in
        Alcotest.(check bool) "wrong name" false
          (Coin.verify_share sharing ~party:0 ~name:"c2" ss));
    Alcotest.test_case "coin share from wrong party rejected" `Quick
      (fun () ->
        let ss = Coin.generate_share sharing ~party:0 ~name:"c1" in
        Alcotest.(check bool) "wrong party" false
          (Coin.verify_share sharing ~party:1 ~name:"c1" ss));
    Alcotest.test_case "coin consistent across qualified subsets" `Quick
      (fun () ->
        let name = "round-7" in
        let shares = shares_for name in
        let value avail =
          let sel = List.filter (fun (i, _) -> Pset.mem i avail) shares in
          Coin.combine sharing ~name ~avail sel ()
        in
        let subsets =
          [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 1; 2 ]; Pset.of_list [ 0; 3 ];
            Pset.of_list [ 0; 1; 2; 3 ] ]
        in
        match value (List.hd subsets) with
        | None -> Alcotest.fail "qualified subset rejected"
        | Some v ->
          List.iter
            (fun s ->
              Alcotest.(check (option int)) "same value" (Some v) (value s))
            subsets);
    Alcotest.test_case "coin unqualified subset fails" `Quick (fun () ->
        let name = "round-8" in
        let shares = shares_for name in
        let sel = List.filter (fun (i, _) -> i = 2) shares in
        Alcotest.(check (option int)) "singleton" None
          (Coin.combine sharing ~name ~avail:(Pset.singleton 2) sel ()));
    Alcotest.test_case "coin values vary with name" `Quick (fun () ->
        (* 32 independent coins: all-equal has probability 2^-31. *)
        let avail = Pset.of_list [ 0; 1 ] in
        let values =
          List.init 32 (fun k ->
              let name = "coin-" ^ string_of_int k in
              let sel =
                List.filter (fun (i, _) -> Pset.mem i avail) (shares_for name)
              in
              Coin.combine sharing ~name ~avail sel ())
        in
        Alcotest.(check bool) "not constant" false
          (List.for_all (fun v -> v = List.hd values) values));
    Alcotest.test_case "coin over example1 structure" `Quick (fun () ->
        let s1 = Canonical_structures.example1 () in
        let sharing1 = deal ~seed:77 s1 in
        let name = "gen-coin" in
        let all =
          List.init 9 (fun i -> (i, Coin.generate_share sharing1 ~party:i ~name))
        in
        List.iter
          (fun (i, ss) ->
            Alcotest.(check bool) "share ok" true
              (Coin.verify_share sharing1 ~party:i ~name ss))
          all;
        (* a qualified set: 3 servers covering 2 classes *)
        let q = Pset.of_list [ 0; 1; 4 ] in
        let sel = List.filter (fun (i, _) -> Pset.mem i q) all in
        (match Coin.combine sharing1 ~name ~avail:q sel () with
        | None -> Alcotest.fail "qualified set rejected"
        | Some v ->
          (* the whole class a is corruptible and must not predict it *)
          let bad = Pset.of_list [ 0; 1; 2; 3 ] in
          let selbad = List.filter (fun (i, _) -> Pset.mem i bad) all in
          Alcotest.(check (option int)) "class a cannot combine" None
            (Coin.combine sharing1 ~name ~avail:bad selbad ());
          ignore v));
    qtest ~count:20 "coin combine agrees for random qualified sets"
      QCheck2.Gen.(pair (small_string ~gen:printable) (int_bound 0x7F))
      (fun (name, set) ->
        let sharing7 = deal ~seed:5 th72 in
        let avail = set land 0x7F in
        let shares =
          List.filter_map
            (fun i ->
              if Pset.mem i avail then
                Some (i, Coin.generate_share sharing7 ~party:i ~name)
              else None)
            (List.init 7 Fun.id)
        in
        let r = Coin.combine sharing7 ~name ~avail shares () in
        if Pset.card avail >= 3 then r <> None else r = None)
  ]

let tdh2_tests =
  let sharing = deal ~seed:9 th43 in
  let rng () = Prng.create ~seed:123 in
  [ Alcotest.test_case "encrypt/decrypt roundtrip" `Quick (fun () ->
        let msg = "attack at dawn" in
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"client-1" msg in
        Alcotest.(check bool) "valid" true (Tdh2.is_valid sharing ct);
        let shares =
          List.filter_map
            (fun i ->
              Option.map (fun s -> (i, s))
                (Tdh2.decryption_share sharing ~party:i ct))
            [ 0; 2 ]
        in
        Alcotest.(check int) "both shared" 2 (List.length shares);
        List.iter
          (fun (i, s) ->
            Alcotest.(check bool) "share verifies" true
              (Tdh2.verify_share sharing ~party:i ct s))
          shares;
        Alcotest.(check (option string)) "decrypts" (Some msg)
          (Tdh2.combine sharing ct ~avail:(Pset.of_list [ 0; 2 ]) shares));
    Alcotest.test_case "tampered ciphertext rejected" `Quick (fun () ->
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"l" "secret" in
        let bad = { ct with Tdh2.c = ct.Tdh2.c ^ "x" } in
        Alcotest.(check bool) "invalid" false (Tdh2.is_valid sharing bad);
        Alcotest.(check bool) "no share for invalid" true
          (Tdh2.decryption_share sharing ~party:0 bad = None));
    Alcotest.test_case "label is authenticated" `Quick (fun () ->
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"alice" "secret" in
        let bad = { ct with Tdh2.label = "mallory" } in
        Alcotest.(check bool) "label swap invalid" false
          (Tdh2.is_valid sharing bad));
    Alcotest.test_case "u is authenticated" `Quick (fun () ->
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"l" "secret" in
        let bad = { ct with Tdh2.u = G.mul ps ct.Tdh2.u ps.G.g } in
        Alcotest.(check bool) "u swap invalid" false (Tdh2.is_valid sharing bad));
    Alcotest.test_case "bogus decryption share rejected" `Quick (fun () ->
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"l" "secret" in
        match Tdh2.decryption_share sharing ~party:0 ct with
        | None -> Alcotest.fail "honest share failed"
        | Some [ s ] ->
          let bad = { s with Tdh2.value = G.mul ps s.Tdh2.value ps.G.g } in
          Alcotest.(check bool) "rejected" false
            (Tdh2.verify_share sharing ~party:0 ct [ bad ])
        | Some _ -> Alcotest.fail "expected single leaf");
    Alcotest.test_case "unqualified cannot decrypt" `Quick (fun () ->
        let ct = Tdh2.encrypt sharing (rng ()) ~label:"l" "secret" in
        let shares =
          List.filter_map
            (fun i ->
              Option.map (fun s -> (i, s))
                (Tdh2.decryption_share sharing ~party:i ct))
            [ 3 ]
        in
        Alcotest.(check (option string)) "singleton fails" None
          (Tdh2.combine sharing ct ~avail:(Pset.singleton 3) shares));
    Alcotest.test_case "roundtrip over example2 structure" `Quick (fun () ->
        let s2 = Canonical_structures.example2 () in
        let sh2 = deal ~seed:21 s2 in
        let msg = "multi-site secret" in
        let ct = Tdh2.encrypt sh2 (rng ()) ~label:"notary" msg in
        (* survivors of a site+OS corruption can decrypt *)
        let bad = Canonical_structures.example2_site_plus_os ~row:2 ~col:1 in
        let good = Pset.complement 16 bad in
        let shares =
          List.filter_map
            (fun i ->
              if Pset.mem i good then
                Option.map (fun s -> (i, s)) (Tdh2.decryption_share sh2 ~party:i ct)
              else None)
            (List.init 16 Fun.id)
        in
        Alcotest.(check (option string)) "survivors decrypt" (Some msg)
          (Tdh2.combine sh2 ct ~avail:good shares);
        (* the corrupted coalition cannot *)
        let badshares =
          List.filter_map
            (fun i ->
              if Pset.mem i bad then
                Option.map (fun s -> (i, s)) (Tdh2.decryption_share sh2 ~party:i ct)
              else None)
            (List.init 16 Fun.id)
        in
        Alcotest.(check (option string)) "coalition blocked" None
          (Tdh2.combine sh2 ct ~avail:bad badshares));
    qtest ~count:20 "roundtrip random messages"
      QCheck2.Gen.(pair string (small_string ~gen:printable))
      (fun (msg, label) ->
        let r = Prng.create ~seed:(String.length msg + (7 * String.length label)) in
        let ct = Tdh2.encrypt sharing r ~label msg in
        let shares =
          List.filter_map
            (fun i ->
              Option.map (fun s -> (i, s))
                (Tdh2.decryption_share sharing ~party:i ct))
            [ 1; 3 ]
        in
        Tdh2.combine sharing ct ~avail:(Pset.of_list [ 1; 3 ]) shares = Some msg)
  ]

let rsa_tests =
  let keys = Rsa_threshold.deal ~bits:192 ~n:4 ~k:2 (Prng.create ~seed:31) in
  [ Alcotest.test_case "shares verify and combine" `Quick (fun () ->
        let msg = "certify: alice's key" in
        let shares =
          List.map (fun i -> Rsa_threshold.sign_share keys ~party:i msg) [ 0; 2 ]
        in
        List.iter
          (fun s ->
            Alcotest.(check bool) "share valid" true
              (Rsa_threshold.verify_share keys msg s))
          shares;
        (match Rsa_threshold.combine keys msg shares with
        | None -> Alcotest.fail "combine failed"
        | Some y ->
          Alcotest.(check bool) "signature valid" true
            (Rsa_threshold.verify keys.Rsa_threshold.pk msg y);
          Alcotest.(check bool) "wrong msg invalid" false
            (Rsa_threshold.verify keys.Rsa_threshold.pk "other" y)));
    Alcotest.test_case "different share subsets give same verdict" `Quick
      (fun () ->
        let msg = "stable" in
        let all =
          List.init 4 (fun i -> Rsa_threshold.sign_share keys ~party:i msg)
        in
        List.iter
          (fun pair ->
            let shares = List.filteri (fun i _ -> List.mem i pair) all in
            match Rsa_threshold.combine keys msg shares with
            | None -> Alcotest.fail "combine failed"
            | Some y ->
              Alcotest.(check bool) "valid" true
                (Rsa_threshold.verify keys.Rsa_threshold.pk msg y))
          [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ]);
    Alcotest.test_case "bogus share detected" `Quick (fun () ->
        let msg = "m" in
        let s = Rsa_threshold.sign_share keys ~party:1 msg in
        let bad = { s with Rsa_threshold.x = B.add s.Rsa_threshold.x B.one } in
        Alcotest.(check bool) "rejected" false
          (Rsa_threshold.verify_share keys msg bad));
    Alcotest.test_case "share for wrong message rejected" `Quick (fun () ->
        let s = Rsa_threshold.sign_share keys ~party:0 "msg-a" in
        Alcotest.(check bool) "rejected" false
          (Rsa_threshold.verify_share keys "msg-b" s));
    Alcotest.test_case "too few shares" `Quick (fun () ->
        let s = Rsa_threshold.sign_share keys ~party:0 "m" in
        Alcotest.(check bool) "none" true
          (Rsa_threshold.combine keys "m" [ s ] = None));
    Alcotest.test_case "dual-threshold variant (k=3 of 4)" `Quick (fun () ->
        let keys3 = Rsa_threshold.deal ~bits:192 ~n:4 ~k:3 (Prng.create ~seed:33) in
        let msg = "cbc-echo-certificate" in
        let shares =
          List.map (fun i -> Rsa_threshold.sign_share keys3 ~party:i msg) [ 0; 1; 3 ]
        in
        match Rsa_threshold.combine keys3 msg shares with
        | None -> Alcotest.fail "combine failed"
        | Some y ->
          Alcotest.(check bool) "valid" true
            (Rsa_threshold.verify keys3.Rsa_threshold.pk msg y))
  ]

let certsig_tests =
  let s1 = Canonical_structures.example1 () in
  let dl = deal ~seed:55 s1 in
  [ Alcotest.test_case "certificate over example1" `Quick (fun () ->
        let msg = "generalized signature" in
        let q = [ 0; 4; 6 ] (* 3 servers, 3 classes: qualified *) in
        let shares = List.map (fun i -> (i, Cert_sig.sign_share dl ~party:i msg)) q in
        (match Cert_sig.combine dl msg shares with
        | None -> Alcotest.fail "combine failed"
        | Some cert ->
          Alcotest.(check bool) "verifies" true (Cert_sig.verify dl msg cert);
          Alcotest.(check bool) "wrong msg fails" false
            (Cert_sig.verify dl "other" cert)));
    Alcotest.test_case "unqualified set cannot produce certificate" `Quick
      (fun () ->
        let msg = "m" in
        (* all of class a: corruptible, hence unqualified for sharing *)
        let q = [ 0; 1; 2; 3 ] in
        let shares = List.map (fun i -> (i, Cert_sig.sign_share dl ~party:i msg)) q in
        Alcotest.(check bool) "combine fails" true
          (Cert_sig.combine dl msg shares = None));
    Alcotest.test_case "combined value unique across signer sets" `Quick
      (fun () ->
        let msg = "uniqueness" in
        let combined q =
          let shares =
            List.map (fun i -> (i, Cert_sig.sign_share dl ~party:i msg)) q
          in
          match Cert_sig.combine dl msg shares with
          | Some c -> c.Cert_sig.combined
          | None -> Alcotest.fail "combine failed"
        in
        Alcotest.(check bool) "same sigma" true
          (G.elt_equal (combined [ 0; 4; 6 ]) (combined [ 1; 5; 8 ])));
    Alcotest.test_case "forged share detected" `Quick (fun () ->
        let msg = "m" in
        match Cert_sig.sign_share dl ~party:0 msg with
        | [] -> Alcotest.fail "expected at least one leaf for party 0"
        | s :: rest ->
          let bad = { s with Cert_sig.value = G.mul ps s.Cert_sig.value ps.G.g } in
          Alcotest.(check bool) "rejected" false
            (Cert_sig.verify_share dl ~party:0 msg (bad :: rest)))
  ]

let keyring_tests =
  [ Alcotest.test_case "keyring end-to-end (threshold)" `Quick (fun () ->
        let kr = Keyring.deal ~rsa_bits:192 ~seed:71 th43 in
        let msg = "service answer" in
        let shares =
          List.map (fun i -> Keyring.service_sign_share kr ~party:i msg) [ 1; 2 ]
        in
        List.iteri
          (fun idx s ->
            let party = List.nth [ 1; 2 ] idx in
            Alcotest.(check bool) "share ok" true
              (Keyring.service_verify_share kr ~party msg s))
          shares;
        (match Keyring.service_combine kr msg shares with
        | None -> Alcotest.fail "combine failed"
        | Some s ->
          Alcotest.(check bool) "service sig ok" true
            (Keyring.service_verify kr msg s));
        (* plain per-party signatures *)
        let psig = Keyring.sign kr ~party:3 "proposal" in
        Alcotest.(check bool) "party sig ok" true
          (Keyring.verify_party_signature kr ~party:3 "proposal" psig);
        Alcotest.(check bool) "party sig wrong party" false
          (Keyring.verify_party_signature kr ~party:2 "proposal" psig));
    Alcotest.test_case "keyring end-to-end (example2)" `Quick (fun () ->
        let kr = Keyring.deal ~seed:72 (Canonical_structures.example2 ()) in
        let msg = "grid service answer" in
        let q = [ 0; 1; 4; 5 ] (* 2x2 block: qualified *) in
        let shares =
          List.map (fun i -> Keyring.service_sign_share kr ~party:i msg) q
        in
        match Keyring.service_combine kr msg shares with
        | None -> Alcotest.fail "combine failed"
        | Some s ->
          Alcotest.(check bool) "service sig ok" true
            (Keyring.service_verify kr msg s))
  ]

let batch_tests =
  (* Synthetic DLEQ batches over a shared base pair, mirroring the shape
     the share schemes produce (same g1 = g and g2 across the batch). *)
  let mk_batch ?(k = 6) ~seed ~domain () =
    let rng = Prng.create ~seed in
    let g2 = G.hash_to_elt ps ~domain:"batch-base" [ "b" ] in
    List.init k (fun _ ->
        let x = G.random_exponent ps rng in
        let h1 = G.exp_g ps x and h2 = G.exp ps g2 x in
        let p = Dleq.prove ps ~domain ~x ~g1:ps.G.g ~h1 ~g2 ~h2 in
        ({ Dleq.g1 = ps.G.g; h1; g2; h2 }, p))
  in
  let corrupt_at i f = List.mapi (fun j sp -> if j = i then f sp else sp) in
  let bad_z (s, (p : Dleq.t)) =
    (s, { p with Dleq.z = B.add_mod p.Dleq.z B.one ps.G.q })
  in
  let bad_h2 ((s : Dleq.statement), p) =
    ({ s with Dleq.h2 = G.mul ps s.Dleq.h2 ps.G.g }, p)
  in
  let eb = Option.get (Crypto_policy.of_string "eager+batch") in
  [ Alcotest.test_case "batch accepts honest proofs" `Quick (fun () ->
        let batch = mk_batch ~seed:101 ~domain:"bt" () in
        Alcotest.(check bool) "accepts" true
          (Dleq.batch_verify ps ~domain:"bt" batch);
        Alcotest.(check (list int)) "nothing to attribute" []
          (Dleq.batch_find_bad ps ~domain:"bt" batch));
    Alcotest.test_case "batch rejects corrupted response, bisection attributes"
      `Quick (fun () ->
        let batch = corrupt_at 3 bad_z (mk_batch ~seed:102 ~domain:"bt" ()) in
        Alcotest.(check bool) "rejects" false
          (Dleq.batch_verify ps ~domain:"bt" batch);
        Alcotest.(check (list int)) "index 3" [ 3 ]
          (Dleq.batch_find_bad ps ~domain:"bt" batch));
    Alcotest.test_case "batch attributes tampered statement" `Quick (fun () ->
        let batch = corrupt_at 1 bad_h2 (mk_batch ~seed:103 ~domain:"bt" ()) in
        Alcotest.(check bool) "rejects" false
          (Dleq.batch_verify ps ~domain:"bt" batch);
        Alcotest.(check (list int)) "index 1" [ 1 ]
          (Dleq.batch_find_bad ps ~domain:"bt" batch));
    Alcotest.test_case "batch attributes multiple corruptions" `Quick (fun () ->
        let batch =
          corrupt_at 4 bad_h2
            (corrupt_at 1 bad_z (mk_batch ~seed:104 ~domain:"bt" ()))
        in
        Alcotest.(check (list int)) "both indices" [ 1; 4 ]
          (Dleq.batch_find_bad ps ~domain:"bt" batch));
    Alcotest.test_case "batch-poisoning commitments are attributed" `Quick
      (fun () ->
        (* A proof whose (c, z) pair is valid but whose carried
           commitments are garbage passes the classic per-proof check
           (which ignores them) yet must never survive the batch path:
           the hash re-check binds the commitments to the challenge. *)
        let batch = mk_batch ~seed:105 ~domain:"bt" () in
        let poison ((s : Dleq.statement), (p : Dleq.t)) =
          (s, { p with Dleq.a1 = G.mul ps p.Dleq.a1 ps.G.g })
        in
        let batch' = corrupt_at 2 poison batch in
        let s2, p2 = List.nth batch' 2 in
        Alcotest.(check bool) "classic verify still passes" true
          (Dleq.verify ps ~domain:"bt" ~g1:s2.Dleq.g1 ~h1:s2.Dleq.h1
             ~g2:s2.Dleq.g2 ~h2:s2.Dleq.h2 p2);
        Alcotest.(check bool) "verify_one rejects" false
          (Dleq.verify_one ps ~domain:"bt" (s2, p2));
        Alcotest.(check bool) "batch rejects" false
          (Dleq.batch_verify ps ~domain:"bt" batch');
        Alcotest.(check (list int)) "attributed" [ 2 ]
          (Dleq.batch_find_bad ps ~domain:"bt" batch'));
    Alcotest.test_case "lazy coin combine prunes corrupted party" `Quick
      (fun () ->
        let sharing = deal ~seed:91 th43 in
        let name = "lazy-coin" in
        let shares =
          List.init 3 (fun i -> (i, Coin.generate_share sharing ~party:i ~name))
        in
        let corrupt =
          List.map
            (fun (i, ss) ->
              if i = 1 then
                ( i,
                  List.map
                    (fun (s : Coin.share) ->
                      { s with Coin.value = G.mul ps s.Coin.value ps.G.g })
                    ss )
              else (i, ss))
            shares
        in
        let expected =
          Coin.combine sharing ~name ~avail:(Pset.of_list [ 0; 2 ])
            (List.filter (fun (i, _) -> i <> 1) shares)
            ()
        in
        Alcotest.(check bool) "honest pair combines" true (expected <> None);
        let got =
          Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
              Coin.combine sharing ~name ~avail:(Pset.of_list [ 0; 1; 2 ])
                corrupt ())
        in
        Alcotest.(check (option int)) "pruned combine agrees" expected got);
    Alcotest.test_case "lazy tdh2 combine prunes corrupted party" `Quick
      (fun () ->
        let sharing = deal ~seed:93 th43 in
        let msg = "lazy tdh2 plaintext" in
        let ct = Tdh2.encrypt sharing (Prng.create ~seed:7) ~label:"l" msg in
        let shares =
          List.filter_map
            (fun i ->
              Option.map (fun s -> (i, s))
                (Tdh2.decryption_share sharing ~party:i ct))
            [ 0; 1; 2 ]
        in
        let corrupt =
          List.map
            (fun (i, ss) ->
              if i = 2 then
                ( i,
                  List.map
                    (fun (s : Tdh2.dec_share) ->
                      { s with Tdh2.value = G.mul ps s.Tdh2.value ps.G.g })
                    ss )
              else (i, ss))
            shares
        in
        Alcotest.(check (option string)) "decrypts despite corruption"
          (Some msg)
          (Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
               Tdh2.combine sharing ct ~avail:(Pset.of_list [ 0; 1; 2 ]) corrupt)));
    Alcotest.test_case "lazy rsa combine falls back past bad share" `Quick
      (fun () ->
        let keys = Rsa_threshold.deal ~bits:192 ~n:4 ~k:2 (Prng.create ~seed:37) in
        let msg = "lazy-rsa" in
        let shares =
          List.map
            (fun i -> Rsa_threshold.sign_share keys ~party:i msg)
            [ 0; 1; 2 ]
        in
        (* party 0 sits inside the first k chosen shares, so the
           optimistic combine fails and the fallback must re-select *)
        let shares =
          List.map
            (fun (s : Rsa_threshold.share) ->
              if s.Rsa_threshold.signer = 0 then
                { s with Rsa_threshold.x = B.add s.Rsa_threshold.x B.one }
              else s)
            shares
        in
        match
          Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
              Rsa_threshold.combine keys msg shares)
        with
        | None -> Alcotest.fail "lazy combine failed"
        | Some y ->
          Alcotest.(check bool) "valid signature" true
            (Rsa_threshold.verify keys.Rsa_threshold.pk msg y));
    Alcotest.test_case "eager+batch verify_share matches eager" `Quick
      (fun () ->
        let s1 = Canonical_structures.example1 () in
        let sharing = deal ~seed:94 s1 in
        let name = "eb-coin" in
        (* a party owning at least two leaves, so the batch path engages *)
        let party, ss =
          let rec find i =
            if i >= 9 then Alcotest.fail "no multi-leaf party in example1"
            else
              let ss = Coin.generate_share sharing ~party:i ~name in
              if List.length ss >= 2 then (i, ss) else find (i + 1)
          in
          find 0
        in
        Alcotest.(check bool) "honest accepted" true
          (Crypto_policy.with_policy eb (fun () ->
               Coin.verify_share sharing ~party ~name ss));
        let bad =
          match ss with
          | s :: rest ->
            { s with Coin.value = G.mul ps s.Coin.value ps.G.g } :: rest
          | [] -> assert false
        in
        Alcotest.(check bool) "corrupted rejected (batched)" false
          (Crypto_policy.with_policy eb (fun () ->
               Coin.verify_share sharing ~party ~name bad));
        Alcotest.(check bool) "corrupted rejected (eager)" false
          (Coin.verify_share sharing ~party ~name bad));
    Alcotest.test_case "lazy counters: batch size, hit, recomb cache" `Quick
      (fun () ->
        let sharing = deal ~seed:92 th43 in
        let name = "obs-coin" in
        let shares =
          List.init 2 (fun i -> (i, Coin.generate_share sharing ~party:i ~name))
        in
        let avail = Pset.of_list [ 0; 1 ] in
        Obs_crypto.enable ();
        Fun.protect ~finally:Obs_crypto.disable (fun () ->
            Obs_crypto.reset ();
            let v =
              Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
                  Coin.combine sharing ~name ~avail shares ())
            in
            Alcotest.(check bool) "combined" true (v <> None);
            Alcotest.(check int) "one batched check" 1
              (Obs_crypto.count Obs_crypto.Batch_verify);
            Alcotest.(check int) "covers both proofs" 2
              (Obs_crypto.count Obs_crypto.Batch_verify_size);
            Alcotest.(check int) "optimistic hit" 1
              (Obs_crypto.count Obs_crypto.Lazy_verify_hit);
            Alcotest.(check int) "no fallback" 0
              (Obs_crypto.count Obs_crypto.Batch_verify_fallback);
            Alcotest.(check bool) "recomb cache warmed" true
              (Obs_crypto.count Obs_crypto.Recomb_cache_hit > 0);
            let misses = Obs_crypto.count Obs_crypto.Recomb_cache_miss in
            let v2 =
              Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
                  Coin.combine sharing ~name ~avail shares ())
            in
            Alcotest.(check (option int)) "same coin" v v2;
            Alcotest.(check int) "vector served from cache" misses
              (Obs_crypto.count Obs_crypto.Recomb_cache_miss)))
  ]

let suite =
  ( "crypto",
    dleq_tests @ coin_tests @ tdh2_tests @ rsa_tests @ certsig_tests
    @ keyring_tests @ batch_tests )
