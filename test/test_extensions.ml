(* Tests for the Section 6 extensions: proactive share refresh and
   hybrid (Byzantine + crash) failure structures. *)

module AS = Adversary_structure
module B = Bignum
module G = Schnorr_group

let ps = G.default ~bits:96 ()
let th41 = AS.threshold ~n:4 ~t:1

let deal ?(seed = 42) structure = Dl_sharing.deal ps structure (Prng.create ~seed)

let proactive_tests =
  [ Alcotest.test_case "refresh preserves public key and leaf consistency"
      `Quick (fun () ->
        let sh = deal th41 in
        let rng = Prng.create ~seed:7 in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "public key unchanged" true
            (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
          (* new leaf keys match new subshares *)
          List.iter
            (fun (s : Lsss.subshare) ->
              Alcotest.(check bool) "leaf key consistent" true
                (G.elt_equal sh'.Dl_sharing.leaf_keys.(s.leaf) (G.exp_g ps s.value)))
            sh'.Dl_sharing.subshares;
          (* shares actually changed *)
          Alcotest.(check bool) "shares re-randomized" false
            (List.for_all2
               (fun (a : Lsss.subshare) (b : Lsss.subshare) ->
                 B.equal a.value b.value)
               sh.Dl_sharing.subshares sh'.Dl_sharing.subshares));
    Alcotest.test_case "coin value survives the epoch change" `Quick (fun () ->
        let sh = deal ~seed:43 th41 in
        let rng = Prng.create ~seed:8 in
        let value sharing =
          let shares =
            List.init 2 (fun i ->
                (i, Coin.generate_share sharing ~party:i ~name:"epoch-coin"))
          in
          Coin.combine sharing ~name:"epoch-coin" ~avail:(Pset.of_list [ 0; 1 ])
            shares ()
        in
        let before = value sh in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2; 3 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "combined before" true (before <> None);
          Alcotest.(check bool) "same coin value from fresh shares" true
            (value sh' = before));
    Alcotest.test_case "old and new shares do not mix" `Quick (fun () ->
        (* The mobile adversary holds party 0's share from epoch 0 and
           party 1's share from epoch 1; recombining them must NOT give
           the secret (checked in the exponent against the public key). *)
        let sh = deal ~seed:44 th41 in
        let rng = Prng.create ~seed:9 in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2; 3 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          let leaf_of sharing party =
            match Dl_sharing.shares_of sharing party with
            | [ s ] -> (s.Lsss.leaf, G.exp_g ps s.Lsss.value)
            | _ -> Alcotest.fail "expected one leaf per party"
          in
          let mixed = [ leaf_of sh 0; leaf_of sh' 1 ] in
          (match
             Dl_sharing.combine_in_exponent sh ~avail:(Pset.of_list [ 0; 1 ])
               ~leaf_values:mixed
           with
          | None -> Alcotest.fail "combination unexpectedly refused"
          | Some g_x ->
            Alcotest.(check bool) "mixed epochs give garbage" false
              (G.elt_equal g_x sh.Dl_sharing.public_key));
          (* sanity: same-epoch shares do give the secret *)
          let fresh = [ leaf_of sh' 0; leaf_of sh' 1 ] in
          (match
             Dl_sharing.combine_in_exponent sh' ~avail:(Pset.of_list [ 0; 1 ])
               ~leaf_values:fresh
           with
          | None -> Alcotest.fail "fresh combination refused"
          | Some g_x ->
            Alcotest.(check bool) "fresh epoch recombines" true
              (G.elt_equal g_x sh.Dl_sharing.public_key)));
    Alcotest.test_case "tampered refresh package rejected" `Quick (fun () ->
        let sh = deal ~seed:45 th41 in
        let rng = Prng.create ~seed:10 in
        let pkg = Proactive.make_refresh sh ~dealer:0 rng in
        Alcotest.(check bool) "honest package ok" true
          (Proactive.verify_refresh sh pkg);
        (* a sharing of 1 instead of 0 would shift the secret *)
        let bad_deltas = Lsss.share sh.Dl_sharing.scheme rng ~secret:B.one in
        let bad_keys =
          Array.make (Lsss.num_leaves sh.Dl_sharing.scheme) (G.one ps)
        in
        List.iter
          (fun (s : Lsss.subshare) -> bad_keys.(s.leaf) <- G.exp_g ps s.value)
          bad_deltas;
        let bad =
          { Proactive.dealer = 0; deltas = bad_deltas; delta_keys = bad_keys }
        in
        Alcotest.(check bool) "nonzero sharing rejected" false
          (Proactive.verify_refresh sh bad);
        (* inconsistent delta keys rejected too *)
        let bad2 =
          { pkg with Proactive.delta_keys = Array.map (G.mul ps ps.G.g) pkg.Proactive.delta_keys }
        in
        Alcotest.(check bool) "inconsistent keys rejected" false
          (Proactive.verify_refresh sh bad2));
    Alcotest.test_case "epoch refused when refreshers may all be corrupted"
      `Quick (fun () ->
        let sh = deal ~seed:46 th41 in
        let rng = Prng.create ~seed:11 in
        match Proactive.run_epoch sh ~refreshers:(Pset.singleton 2) rng with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "singleton refresher set must be refused");
    Alcotest.test_case "refresh works over example1 structure" `Quick
      (fun () ->
        let s1 = Canonical_structures.example1 () in
        let sh = deal ~seed:47 s1 in
        let rng = Prng.create ~seed:12 in
        match
          Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 4; 6 ]) rng
        with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "public key unchanged" true
            (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
          (* fresh TDH2 decryption still works with the refreshed shares *)
          let ct = Tdh2.encrypt sh' (Prng.create ~seed:1) ~label:"l" "msg" in
          let q = [ 0; 1; 4 ] in
          let shares =
            List.filter_map
              (fun i ->
                Option.map (fun s -> (i, s)) (Tdh2.decryption_share sh' ~party:i ct))
              q
          in
          Alcotest.(check (option string)) "decrypts after refresh" (Some "msg")
            (Tdh2.combine sh' ct ~avail:(Pset.of_list q) shares))
  ]

let hybrid_tests =
  [ Alcotest.test_case "hybrid predicates and q3 arithmetic" `Quick (fun () ->
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        Alcotest.(check bool) "q3: 6 > 3+2" true (AS.satisfies_q3 h);
        Alcotest.(check bool) "pure threshold t=2 at n=6 fails q3" false
          (AS.satisfies_q3 (AS.threshold ~n:6 ~t:2));
        Alcotest.(check bool) "big quorum 4" true
          (AS.big_quorum h (Pset.of_list [ 0; 1; 2; 3 ]));
        Alcotest.(check bool) "big quorum 3" false
          (AS.big_quorum h (Pset.of_list [ 0; 1; 2 ]));
        Alcotest.(check bool) "two_cover 3" true
          (AS.two_cover h (Pset.of_list [ 0; 1; 2 ]));
        Alcotest.(check bool) "honest at 2" true
          (AS.contains_honest h (Pset.of_list [ 0; 1 ]));
        Alcotest.(check bool) "honest at 1" false
          (AS.contains_honest h (Pset.singleton 0));
        Alcotest.(check bool) "sharing compatible" true
          (AS.check_sharing_compatible h);
        Alcotest.(check (option int)) "min big quorum" (Some 4)
          (AS.min_big_quorum_size h));
    Alcotest.test_case "abc over hybrid: 1 byzantine + 1 crash on 6 servers"
      `Quick (fun () ->
        (* n=6 cannot tolerate 2 uniform Byzantine faults (needs 7), but
           the hybrid structure orders payloads with 1 Byzantine spammer
           plus 1 crashed server. *)
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:71 h in
        List.iter
          (fun seed ->
            let sim = Sim.create ~n:6 ~seed () in
            let logs = Array.make 6 [] in
            let nodes =
              Stack.deploy_abc ~sim ~keyring:kr
                ~tag:(Printf.sprintf "hyb-%d" seed)
                ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
            in
            Sim.crash sim 5;
            (* server 4 is Byzantine: it spams junk round proposals *)
            Sim.set_handler sim 4 (fun ~src:_ (_ : Abc.msg Link.frame) ->
                for dst = 0 to 5 do
                  Sim.send sim ~src:4 ~dst
                    (Link.Raw (Abc.Proposal (0, "junk", "junk-sig")))
                done);
            Abc.broadcast nodes.(0) "hybrid-payload-1";
            Abc.broadcast nodes.(2) "hybrid-payload-2";
            let honest = [ 0; 1; 2; 3 ] in
            Sim.run sim
              ~until:(fun () ->
                List.for_all (fun i -> List.length logs.(i) >= 2) honest);
            List.iter
              (fun i ->
                Alcotest.(check (list string)) "same order"
                  (List.rev logs.(List.hd honest))
                  (List.rev logs.(i)))
              honest)
          [ 501; 502 ]);
    Alcotest.test_case "hybrid service end-to-end" `Quick (fun () ->
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:72 h in
        let sim = Sim.create ~n:6 ~seed:503 () in
        let _nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        Sim.crash sim 3;
        let client =
          Service.Client.create ~sim ~keyring:kr ~slot:6 ~seed:1 ()
        in
        let result = ref None in
        Service.Client.request client ~mode:Service.Plain
          (Directory_service.bind_request ~key:"a" ~value:"1") (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "bound with a crash on hybrid structure" true
          (match !result with
          | Some rc -> Codec.decode rc.Service.rc_response = Some [ "bound"; "a" ]
          | None -> false))
  ]

let suite = ("extensions", proactive_tests @ hybrid_tests)
