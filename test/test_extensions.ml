(* Tests for the Section 6 extensions: proactive share refresh and
   hybrid (Byzantine + crash) failure structures. *)

module AS = Adversary_structure
module B = Bignum
module G = Schnorr_group

let ps = G.default ~bits:96 ()
let th41 = AS.threshold ~n:4 ~t:1

let deal ?(seed = 42) structure = Dl_sharing.deal ps structure (Prng.create ~seed)

let proactive_tests =
  [ Alcotest.test_case "refresh preserves public key and leaf consistency"
      `Quick (fun () ->
        let sh = deal th41 in
        let rng = Prng.create ~seed:7 in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "public key unchanged" true
            (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
          (* new leaf keys match new subshares *)
          List.iter
            (fun (s : Lsss.subshare) ->
              Alcotest.(check bool) "leaf key consistent" true
                (G.elt_equal sh'.Dl_sharing.leaf_keys.(s.leaf) (G.exp_g ps s.value)))
            sh'.Dl_sharing.subshares;
          (* shares actually changed *)
          Alcotest.(check bool) "shares re-randomized" false
            (List.for_all2
               (fun (a : Lsss.subshare) (b : Lsss.subshare) ->
                 B.equal a.value b.value)
               sh.Dl_sharing.subshares sh'.Dl_sharing.subshares));
    Alcotest.test_case "coin value survives the epoch change" `Quick (fun () ->
        let sh = deal ~seed:43 th41 in
        let rng = Prng.create ~seed:8 in
        let value sharing =
          let shares =
            List.init 2 (fun i ->
                (i, Coin.generate_share sharing ~party:i ~name:"epoch-coin"))
          in
          Coin.combine sharing ~name:"epoch-coin" ~avail:(Pset.of_list [ 0; 1 ])
            shares ()
        in
        let before = value sh in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2; 3 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "combined before" true (before <> None);
          Alcotest.(check bool) "same coin value from fresh shares" true
            (value sh' = before));
    Alcotest.test_case "old and new shares do not mix" `Quick (fun () ->
        (* The mobile adversary holds party 0's share from epoch 0 and
           party 1's share from epoch 1; recombining them must NOT give
           the secret (checked in the exponent against the public key). *)
        let sh = deal ~seed:44 th41 in
        let rng = Prng.create ~seed:9 in
        match Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 1; 2; 3 ]) rng with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          let leaf_of sharing party =
            match Dl_sharing.shares_of sharing party with
            | [ s ] -> (s.Lsss.leaf, G.exp_g ps s.Lsss.value)
            | _ -> Alcotest.fail "expected one leaf per party"
          in
          let mixed = [ leaf_of sh 0; leaf_of sh' 1 ] in
          (match
             Dl_sharing.combine_in_exponent sh ~avail:(Pset.of_list [ 0; 1 ])
               ~leaf_values:mixed
           with
          | None -> Alcotest.fail "combination unexpectedly refused"
          | Some g_x ->
            Alcotest.(check bool) "mixed epochs give garbage" false
              (G.elt_equal g_x sh.Dl_sharing.public_key));
          (* sanity: same-epoch shares do give the secret *)
          let fresh = [ leaf_of sh' 0; leaf_of sh' 1 ] in
          (match
             Dl_sharing.combine_in_exponent sh' ~avail:(Pset.of_list [ 0; 1 ])
               ~leaf_values:fresh
           with
          | None -> Alcotest.fail "fresh combination refused"
          | Some g_x ->
            Alcotest.(check bool) "fresh epoch recombines" true
              (G.elt_equal g_x sh.Dl_sharing.public_key)));
    Alcotest.test_case "tampered refresh package rejected" `Quick (fun () ->
        let sh = deal ~seed:45 th41 in
        let rng = Prng.create ~seed:10 in
        let pkg = Proactive.make_refresh sh ~dealer:0 rng in
        Alcotest.(check bool) "honest package ok" true
          (Proactive.verify_refresh sh pkg);
        (* a sharing of 1 instead of 0 would shift the secret *)
        let bad_deltas = Lsss.share sh.Dl_sharing.scheme rng ~secret:B.one in
        let bad_keys =
          Array.make (Lsss.num_leaves sh.Dl_sharing.scheme) (G.one ps)
        in
        List.iter
          (fun (s : Lsss.subshare) -> bad_keys.(s.leaf) <- G.exp_g ps s.value)
          bad_deltas;
        let bad =
          { Proactive.dealer = 0; deltas = bad_deltas; delta_keys = bad_keys }
        in
        Alcotest.(check bool) "nonzero sharing rejected" false
          (Proactive.verify_refresh sh bad);
        (* inconsistent delta keys rejected too *)
        let bad2 =
          { pkg with Proactive.delta_keys = Array.map (G.mul ps ps.G.g) pkg.Proactive.delta_keys }
        in
        Alcotest.(check bool) "inconsistent keys rejected" false
          (Proactive.verify_refresh sh bad2));
    Alcotest.test_case "epoch refused when refreshers may all be corrupted"
      `Quick (fun () ->
        let sh = deal ~seed:46 th41 in
        let rng = Prng.create ~seed:11 in
        match Proactive.run_epoch sh ~refreshers:(Pset.singleton 2) rng with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "singleton refresher set must be refused");
    Alcotest.test_case "refresh works over example1 structure" `Quick
      (fun () ->
        let s1 = Canonical_structures.example1 () in
        let sh = deal ~seed:47 s1 in
        let rng = Prng.create ~seed:12 in
        match
          Proactive.run_epoch sh ~refreshers:(Pset.of_list [ 0; 4; 6 ]) rng
        with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "public key unchanged" true
            (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
          (* fresh TDH2 decryption still works with the refreshed shares *)
          let ct = Tdh2.encrypt sh' (Prng.create ~seed:1) ~label:"l" "msg" in
          let q = [ 0; 1; 4 ] in
          let shares =
            List.filter_map
              (fun i ->
                Option.map (fun s -> (i, s)) (Tdh2.decryption_share sh' ~party:i ct))
              q
          in
          Alcotest.(check (option string)) "decrypts after refresh" (Some "msg")
            (Tdh2.combine sh' ct ~avail:(Pset.of_list q) shares))
  ]

let hybrid_tests =
  [ Alcotest.test_case "hybrid predicates and q3 arithmetic" `Quick (fun () ->
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        Alcotest.(check bool) "q3: 6 > 3+2" true (AS.satisfies_q3 h);
        Alcotest.(check bool) "pure threshold t=2 at n=6 fails q3" false
          (AS.satisfies_q3 (AS.threshold ~n:6 ~t:2));
        Alcotest.(check bool) "big quorum 4" true
          (AS.big_quorum h (Pset.of_list [ 0; 1; 2; 3 ]));
        Alcotest.(check bool) "big quorum 3" false
          (AS.big_quorum h (Pset.of_list [ 0; 1; 2 ]));
        Alcotest.(check bool) "two_cover 3" true
          (AS.two_cover h (Pset.of_list [ 0; 1; 2 ]));
        Alcotest.(check bool) "honest at 2" true
          (AS.contains_honest h (Pset.of_list [ 0; 1 ]));
        Alcotest.(check bool) "honest at 1" false
          (AS.contains_honest h (Pset.singleton 0));
        Alcotest.(check bool) "sharing compatible" true
          (AS.check_sharing_compatible h);
        Alcotest.(check (option int)) "min big quorum" (Some 4)
          (AS.min_big_quorum_size h));
    Alcotest.test_case "abc over hybrid: 1 byzantine + 1 crash on 6 servers"
      `Quick (fun () ->
        (* n=6 cannot tolerate 2 uniform Byzantine faults (needs 7), but
           the hybrid structure orders payloads with 1 Byzantine spammer
           plus 1 crashed server. *)
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:71 h in
        List.iter
          (fun seed ->
            let sim = Sim.create ~n:6 ~seed () in
            let logs = Array.make 6 [] in
            let nodes =
              Stack.deploy_abc ~sim ~keyring:kr
                ~tag:(Printf.sprintf "hyb-%d" seed)
                ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
            in
            Sim.crash sim 5;
            (* server 4 is Byzantine: it spams junk round proposals *)
            Sim.set_handler sim 4 (fun ~src:_ (_ : Abc.msg Link.frame) ->
                for dst = 0 to 5 do
                  Sim.send sim ~src:4 ~dst
                    (Link.Raw (Abc.Proposal (0, "junk", "junk-sig")))
                done);
            Abc.broadcast nodes.(0) "hybrid-payload-1";
            Abc.broadcast nodes.(2) "hybrid-payload-2";
            let honest = [ 0; 1; 2; 3 ] in
            Sim.run sim
              ~until:(fun () ->
                List.for_all (fun i -> List.length logs.(i) >= 2) honest);
            List.iter
              (fun i ->
                Alcotest.(check (list string)) "same order"
                  (List.rev logs.(List.hd honest))
                  (List.rev logs.(i)))
              honest)
          [ 501; 502 ]);
    Alcotest.test_case "hybrid service end-to-end" `Quick (fun () ->
        let h = AS.hybrid_threshold ~n:6 ~byzantine:1 ~crash:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:72 h in
        let sim = Sim.create ~n:6 ~seed:503 () in
        let _nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        Sim.crash sim 3;
        let client =
          Service.Client.create ~sim ~keyring:kr ~slot:6 ~seed:1 ()
        in
        let result = ref None in
        Service.Client.request client ~mode:Service.Plain
          (Directory_service.bind_request ~key:"a" ~value:"1") (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "bound with a crash on hybrid structure" true
          (match !result with
          | Some rc -> Codec.decode rc.Service.rc_response = Some [ "bound"; "a" ]
          | None -> false))
  ]

(* ---- proactive edge cases and membership-change resharing ----------- *)

let member_formula members =
  (* t = 1 over the listed members, inside a fixed n = 4 universe *)
  Monotone_formula.threshold 2 (List.map Monotone_formula.leaf members)

let proactive_edge_tests =
  [ Alcotest.test_case "apply_refreshes [] is the identity" `Quick (fun () ->
        let sh = deal ~seed:48 th41 in
        let sh' = Proactive.apply_refreshes sh [] in
        Alcotest.(check bool) "subshares unchanged" true
          (List.for_all2
             (fun (a : Lsss.subshare) (b : Lsss.subshare) ->
               a.leaf = b.leaf && a.party = b.party && B.equal a.value b.value)
             sh.Dl_sharing.subshares sh'.Dl_sharing.subshares);
        Alcotest.(check bool) "leaf keys unchanged" true
          (Array.for_all2 G.elt_equal sh.Dl_sharing.leaf_keys
             sh'.Dl_sharing.leaf_keys));
    Alcotest.test_case "run_epoch with an unqualified refresher set" `Quick
      (fun () ->
        let sh = deal ~seed:49 th41 in
        let rng = Prng.create ~seed:13 in
        (match Proactive.run_epoch sh ~refreshers:Pset.empty rng with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "empty refresher set must be refused");
        match Proactive.run_epoch sh ~refreshers:(Pset.singleton 1) rng with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "possibly-corrupted singleton must be refused");
    Alcotest.test_case "duplicate-dealer refresh packages stay consistent"
      `Quick (fun () ->
        (* two zero-sharings from the same dealer are harmless: the sum
           is still a sharing of zero, keys track values *)
        let sh = deal ~seed:50 th41 in
        let rng = Prng.create ~seed:14 in
        let p1 = Proactive.make_refresh sh ~dealer:0 rng in
        let p2 = Proactive.make_refresh sh ~dealer:0 rng in
        let p3 = Proactive.make_refresh sh ~dealer:1 rng in
        let sh' = Proactive.apply_refreshes sh [ p1; p2; p3 ] in
        Alcotest.(check bool) "public key unchanged" true
          (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
        List.iter
          (fun (s : Lsss.subshare) ->
            Alcotest.(check bool) "leaf key consistent" true
              (G.elt_equal sh'.Dl_sharing.leaf_keys.(s.leaf)
                 (G.exp_g ps s.value)))
          sh'.Dl_sharing.subshares);
    Alcotest.test_case "reshare rejects duplicate dealers" `Quick (fun () ->
        let sh = deal ~seed:51 th41 in
        let rng = Prng.create ~seed:15 in
        let target = Proactive.target_of sh th41 in
        let p0 = Proactive.make_reshare sh target ~dealer:0 rng in
        let p0' = Proactive.make_reshare sh target ~dealer:0 rng in
        match Proactive.apply_reshares sh target [ p0; p0' ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "duplicate dealer must be refused") ]

let reshare_tests =
  [ Alcotest.test_case "reshare to the same structure re-randomizes" `Quick
      (fun () ->
        let sh = deal ~seed:52 th41 in
        let rng = Prng.create ~seed:16 in
        match
          Proactive.run_reshare sh ~structure:th41
            ~dealers:(Pset.of_list [ 0; 1; 2 ])
            rng
        with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          Alcotest.(check bool) "public key unchanged" true
            (G.elt_equal sh.Dl_sharing.public_key sh'.Dl_sharing.public_key);
          Alcotest.(check bool) "shares changed" false
            (List.for_all2
               (fun (a : Lsss.subshare) (b : Lsss.subshare) ->
                 B.equal a.value b.value)
               sh.Dl_sharing.subshares sh'.Dl_sharing.subshares);
          List.iter
            (fun (s : Lsss.subshare) ->
              Alcotest.(check bool) "leaf key consistent" true
                (G.elt_equal sh'.Dl_sharing.leaf_keys.(s.leaf)
                   (G.exp_g ps s.value)))
            sh'.Dl_sharing.subshares);
    Alcotest.test_case "remove then re-add a replica preserves the secret"
      `Quick (fun () ->
        (* 4 members -> drop party 3 -> re-admit party 3; the public key
           never changes and the final sharing serves party 3 again *)
        let sh = deal ~seed:53 th41 in
        let rng = Prng.create ~seed:17 in
        let without3 =
          AS.of_access_formula ~n:4 (member_formula [ 0; 1; 2 ])
        in
        let removed =
          match
            Proactive.run_reshare sh ~structure:without3
              ~dealers:(Pset.of_list [ 0; 1; 2 ])
              rng
          with
          | Error e -> Alcotest.fail e
          | Ok s -> s
        in
        Alcotest.(check bool) "pk invariant after removal" true
          (G.elt_equal sh.Dl_sharing.public_key
             removed.Dl_sharing.public_key);
        Alcotest.(check int) "removed party owns nothing" 0
          (List.length (Dl_sharing.shares_of removed 3));
        let readded =
          match
            Proactive.run_reshare removed ~structure:th41
              ~dealers:(Pset.of_list [ 0; 1; 2 ])
              rng
          with
          | Error e -> Alcotest.fail e
          | Ok s -> s
        in
        Alcotest.(check bool) "pk invariant after re-add" true
          (G.elt_equal sh.Dl_sharing.public_key
             readded.Dl_sharing.public_key);
        Alcotest.(check bool) "re-admitted party holds shares" true
          (Dl_sharing.shares_of readded 3 <> []);
        (* the re-admitted replica's shares really open the secret *)
        let leaf_vals =
          List.concat_map
            (fun p ->
              List.map
                (fun (s : Lsss.subshare) ->
                  (s.Lsss.leaf, G.exp_g ps s.Lsss.value))
                (Dl_sharing.shares_of readded p))
            [ 2; 3 ]
        in
        match
          Dl_sharing.combine_in_exponent readded
            ~avail:(Pset.of_list [ 2; 3 ]) ~leaf_values:leaf_vals
        with
        | None -> Alcotest.fail "post-re-add combination refused"
        | Some g_x ->
          Alcotest.(check bool) "opens to the public key" true
            (G.elt_equal g_x sh.Dl_sharing.public_key));
    Alcotest.test_case "old shares are useless after a reshare" `Quick
      (fun () ->
        let sh = deal ~seed:54 th41 in
        let rng = Prng.create ~seed:18 in
        match
          Proactive.run_reshare sh ~structure:th41
            ~dealers:(Pset.of_list [ 0; 1; 2; 3 ])
            rng
        with
        | Error e -> Alcotest.fail e
        | Ok sh' ->
          let leaf_of sharing party =
            match Dl_sharing.shares_of sharing party with
            | [ s ] -> (s.Lsss.leaf, G.exp_g ps s.Lsss.value)
            | _ -> Alcotest.fail "expected one leaf per party"
          in
          (match
             Dl_sharing.combine_in_exponent sh ~avail:(Pset.of_list [ 0; 1 ])
               ~leaf_values:[ leaf_of sh 0; leaf_of sh' 1 ]
           with
          | None -> Alcotest.fail "combination unexpectedly refused"
          | Some g_x ->
            Alcotest.(check bool) "mixed epochs give garbage" false
              (G.elt_equal g_x sh.Dl_sharing.public_key)));
    Alcotest.test_case "reshare refused without a qualified dealer set"
      `Quick (fun () ->
        let sh = deal ~seed:55 th41 in
        let rng = Prng.create ~seed:19 in
        match
          Proactive.run_reshare sh ~structure:th41 ~dealers:(Pset.singleton 0)
            rng
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "singleton dealer set must be refused");
    Alcotest.test_case "tampered reshare package rejected" `Quick (fun () ->
        let sh = deal ~seed:56 th41 in
        let rng = Prng.create ~seed:20 in
        let target = Proactive.target_of sh th41 in
        let pkg = Proactive.make_reshare sh target ~dealer:2 rng in
        Alcotest.(check bool) "honest package ok" true
          (Proactive.verify_reshare sh target pkg);
        (* shifting one sub-dealing's value breaks the key binding *)
        let bad =
          { pkg with
            Proactive.r_deals =
              List.map
                (fun (l, shares, keys) ->
                  ( l,
                    List.map
                      (fun (w : Lsss.subshare) ->
                        { w with
                          Lsss.value = B.add_mod w.Lsss.value B.one ps.G.q })
                      shares,
                    keys ))
                pkg.Proactive.r_deals }
        in
        Alcotest.(check bool) "shifted values rejected" false
          (Proactive.verify_reshare sh target bad);
        (* consistently shifted keys+values dodge the key binding but not
           the old-leaf-key recombination check *)
        let bad2 =
          { pkg with
            Proactive.r_deals =
              List.map
                (fun (l, shares, keys) ->
                  ( l,
                    List.map
                      (fun (w : Lsss.subshare) ->
                        { w with
                          Lsss.value = B.add_mod w.Lsss.value B.one ps.G.q })
                      shares,
                    Array.map (fun k -> G.mul ps k ps.G.g) keys ))
                pkg.Proactive.r_deals }
        in
        Alcotest.(check bool) "shifted sharing rejected" false
          (Proactive.verify_reshare sh target bad2);
        (* claiming someone else's leaves is rejected *)
        let bad3 = { pkg with Proactive.r_dealer = 3 } in
        Alcotest.(check bool) "wrong dealer rejected" false
          (Proactive.verify_reshare sh target bad3)) ]

let suite =
  ( "extensions",
    proactive_tests @ proactive_edge_tests @ reshare_tests @ hybrid_tests )
