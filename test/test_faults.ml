(* Fault-injection subsystem: chaos policies (drop / duplication /
   reorder / partition schedules), the unified drop paths, the
   diagnostic Out_of_steps payload, the Byzantine behaviour library, the
   safety/liveness oracles, and the seed-sweep campaign regression
   (50 seeds per chaos policy with a maximal corrupted set, for both
   ABBA and ABC). *)

module AS = Adversary_structure

let drop_only rate = { Sim.no_fault with Sim.drop = rate }

let with_chaos ?(policy = Sim.Fifo) ~n ~seed chaos =
  let sim = Sim.create ~policy ~n ~seed () in
  Sim.set_chaos sim (Some chaos);
  sim

(* Install counting sinks on every server slot. *)
let sinks sim n =
  let received = Array.make n [] in
  for p = 0 to n - 1 do
    Sim.set_handler sim p (fun ~src m -> received.(p) <- (src, m) :: received.(p))
  done;
  received

(* ---------------- chaos: link faults --------------------------------- *)

let chaos_tests =
  [ Alcotest.test_case "set_chaos validates rates and windows" `Quick
      (fun () ->
        let sim : unit Sim.t = Sim.create ~n:2 ~seed:1 () in
        let bad rate =
          Alcotest.check_raises "rate"
            (Invalid_argument
               (Printf.sprintf "Sim.set_chaos: drop rate %g not in [0,1]" rate))
            (fun () ->
              Sim.set_chaos sim
                (Some
                   { Sim.benign_chaos with
                     Sim.default_link = drop_only rate }))
        in
        bad 1.5;
        bad (-0.25);
        Alcotest.check_raises "empty window"
          (Invalid_argument "Sim.set_chaos: empty partition window")
          (fun () ->
            Sim.set_chaos sim
              (Some
                 { Sim.benign_chaos with
                   Sim.partitions =
                     [ { Sim.from_t = 10.0; until_t = 10.0; cells = [] } ] }));
        (* benign spec installs and clears fine *)
        Sim.set_chaos sim (Some Sim.benign_chaos);
        Sim.set_chaos sim None);
    Alcotest.test_case "per-link drop=1 loses exactly that link" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:7
            { Sim.benign_chaos with
              Sim.links = [ ((0, 1), drop_only 1.0) ] }
        in
        let received = sinks sim 2 in
        for k = 0 to 4 do
          Sim.send sim ~src:0 ~dst:1 k;
          Sim.send sim ~src:1 ~dst:0 (100 + k)
        done;
        Sim.run sim;
        let m = Sim.metrics sim in
        Alcotest.(check int) "0->1 all lost" 0 (List.length received.(1));
        Alcotest.(check int) "1->0 all delivered" 5 (List.length received.(0));
        Alcotest.(check int) "chaos drops" 5 m.Metrics.chaos_drops;
        Alcotest.(check int) "total drops" 5 m.Metrics.drops);
    Alcotest.test_case "duplicate=1 delivers every message exactly twice"
      `Quick (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:11
            { Sim.benign_chaos with
              Sim.default_link = { Sim.no_fault with Sim.duplicate = 1.0 } }
        in
        let received = sinks sim 2 in
        for k = 0 to 3 do
          Sim.send sim ~src:0 ~dst:1 k
        done;
        Sim.run sim;
        let m = Sim.metrics sim in
        Alcotest.(check int) "twice each" 8 (List.length received.(1));
        Alcotest.(check int) "chaos dups" 4 m.Metrics.chaos_dups;
        List.iter
          (fun k ->
            Alcotest.(check int)
              (Printf.sprintf "copies of %d" k)
              2
              (List.length
                 (List.filter (fun (_, m) -> m = k) received.(1))))
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "reorder defers but still delivers everything" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:13
            { Sim.benign_chaos with
              Sim.default_link = { Sim.no_fault with Sim.reorder = 0.5 } }
        in
        let received = sinks sim 2 in
        for k = 0 to 19 do
          Sim.send sim ~src:0 ~dst:1 k
        done;
        Sim.run sim;
        let m = Sim.metrics sim in
        Alcotest.(check int) "all delivered" 20 (List.length received.(1));
        Alcotest.(check bool) "some reorders happened" true
          (m.Metrics.chaos_reorders > 0);
        Alcotest.(check int) "no drops" 0 m.Metrics.drops);
    Alcotest.test_case "chaos runs are seed-deterministic" `Quick (fun () ->
        let run () =
          let sim =
            with_chaos ~policy:Sim.Random_order ~n:4 ~seed:23
              { Sim.benign_chaos with
                Sim.default_link =
                  { Sim.drop = 0.2; duplicate = 0.3; reorder = 0.3; delay = 0.0 } }
          in
          Sim.enable_trace sim ~summarize:string_of_int;
          let received = sinks sim 4 in
          for src = 0 to 3 do
            for k = 0 to 9 do
              Sim.broadcast sim ~src ((10 * src) + k)
            done
          done;
          Sim.run sim;
          let m = Sim.metrics sim in
          ( Array.map (fun l -> List.rev l) received,
            Sim.clock sim,
            ( m.Metrics.deliveries,
              m.Metrics.chaos_drops,
              m.Metrics.chaos_dups,
              m.Metrics.chaos_reorders ),
            List.length (Sim.trace sim) )
        in
        let r1 = run () and r2 = run () in
        Alcotest.(check bool) "identical outcomes" true (r1 = r2)) ]

(* ---------------- chaos: partitions ---------------------------------- *)

let partition_tests =
  [ Alcotest.test_case "cross-cell traffic waits for the heal" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:4 ~seed:3
            { Sim.benign_chaos with
              Sim.partitions =
                [ { Sim.from_t = 0.0;
                    until_t = 500.0;
                    cells = [ Pset.of_list [ 0; 1 ]; Pset.of_list [ 2; 3 ] ]
                  } ] }
        in
        Sim.enable_trace sim ~summarize:string_of_int;
        let received = sinks sim 4 in
        Sim.send sim ~src:0 ~dst:1 1;
        Sim.send sim ~src:0 ~dst:2 2;
        Sim.send sim ~src:3 ~dst:2 3;
        Sim.run sim;
        Alcotest.(check int) "everything delivered" 3
          (Array.fold_left (fun a l -> a + List.length l) 0 received);
        List.iter
          (fun ev ->
            match ev with
            | Sim.Delivered { at; src; dst; _ } ->
              let cell p = if p < 2 then 0 else 1 in
              if cell src <> cell dst then
                Alcotest.(check bool)
                  (Printf.sprintf "%d->%d delivered after heal" src dst)
                  true (at >= 500.0)
              else
                Alcotest.(check bool)
                  (Printf.sprintf "%d->%d delivered during window" src dst)
                  true (at < 500.0)
            | _ -> ())
          (Sim.trace sim));
    Alcotest.test_case "expired and pending windows do not block" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:5
            { Sim.benign_chaos with
              Sim.partitions =
                [ { Sim.from_t = 1.0e6;
                    until_t = 2.0e6;
                    cells = [ Pset.singleton 0; Pset.singleton 1 ] } ] }
        in
        let received = sinks sim 2 in
        Sim.send sim ~src:0 ~dst:1 42;
        Sim.run sim;
        Alcotest.(check int) "delivered before the window opens" 1
          (List.length received.(1));
        Alcotest.(check bool) "well before" true (Sim.clock sim < 1.0e6));
    (* Regression: an open-ended window (until_t = infinity) used to
       crash the all-blocked scheduler fallback with Invalid_argument
       "Sim.remove_nth" — every env_release was infinite, so no
       "earliest-healing" envelope existed.  The fallback is now a clock
       advance: with no timers the network simply quiesces. *)
    Alcotest.test_case "open-ended window with no timers quiesces" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:29
            { Sim.benign_chaos with
              Sim.partitions =
                [ { Sim.from_t = 0.0;
                    until_t = infinity;
                    cells = [ Pset.singleton 0; Pset.singleton 1 ] } ] }
        in
        let received = sinks sim 2 in
        Sim.send sim ~src:0 ~dst:1 1;
        Sim.send sim ~src:1 ~dst:0 2;
        Sim.run sim;
        Alcotest.(check int) "nothing delivered" 0
          (Array.fold_left (fun a l -> a + List.length l) 0 received);
        Alcotest.(check int) "envelopes still pending" 2
          (Sim.pending_count sim));
    Alcotest.test_case "timers keep firing behind an open-ended cut" `Quick
      (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:31
            { Sim.benign_chaos with
              Sim.partitions =
                [ { Sim.from_t = 0.0;
                    until_t = infinity;
                    cells = [ Pset.singleton 0; Pset.singleton 1 ] } ] }
        in
        let received = sinks sim 2 in
        let fired = ref [] in
        let rec rearm k =
          if k < 5 then
            Sim.set_timer sim 0 ~delay:50.0 (fun () ->
                fired := Sim.clock sim :: !fired;
                (* a blocked retransmission attempt every period *)
                Sim.send sim ~src:0 ~dst:1 k;
                rearm (k + 1))
        in
        rearm 0;
        Sim.send sim ~src:0 ~dst:1 99;
        Sim.run sim;
        Alcotest.(check int) "all five timers fired" 5 (List.length !fired);
        (* each fired at its own deadline, not at some heal time *)
        List.iteri
          (fun i at ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "deadline %d" i)
              (float_of_int (5 - i) *. 50.0)
              at)
          !fired;
        Alcotest.(check int) "blocked traffic never delivered" 0
          (Array.fold_left (fun a l -> a + List.length l) 0 received));
    Alcotest.test_case "timer before a finite heal fires at its deadline"
      `Quick (fun () ->
        let sim =
          with_chaos ~n:2 ~seed:37
            { Sim.benign_chaos with
              Sim.partitions =
                [ { Sim.from_t = 0.0;
                    until_t = 10_000.0;
                    cells = [ Pset.singleton 0; Pset.singleton 1 ] } ] }
        in
        let received = sinks sim 2 in
        let timer_at = ref nan in
        Sim.set_timer sim 0 ~delay:200.0 (fun () -> timer_at := Sim.clock sim);
        Sim.send sim ~src:0 ~dst:1 7;
        Sim.run sim;
        (* the old fallback jumped straight to the heal and only then
           fired the timer; now the timer fires first, at 200 *)
        Alcotest.(check (float 1e-9)) "timer at its deadline" 200.0 !timer_at;
        Alcotest.(check int) "message delivered after the heal" 1
          (List.length received.(1));
        Alcotest.(check bool) "clock past the heal" true
          (Sim.clock sim >= 10_000.0)) ]

(* ---------------- drop-path unification & diagnostics ---------------- *)

let drop_path_tests =
  [ Alcotest.test_case "all three drop reasons reach trace and metrics"
      `Quick (fun () ->
        let sim =
          with_chaos ~n:3 ~seed:17
            { Sim.benign_chaos with
              Sim.links = [ ((0, 1), drop_only 1.0) ] }
        in
        Sim.enable_trace sim ~summarize:string_of_int;
        (* party 2 gets no handler; party 1 handled but crashed later *)
        Sim.set_handler sim 0 (fun ~src:_ _ -> ());
        Sim.set_handler sim 1 (fun ~src:_ _ -> ());
        Sim.send sim ~src:0 ~dst:1 1 (* chaos *);
        Sim.send sim ~src:0 ~dst:2 2 (* no handler *);
        Sim.crash sim 1;
        Sim.send sim ~src:2 ~dst:1 3 (* crashed *);
        Sim.run sim;
        let reasons =
          List.filter_map
            (function
              | Sim.Dropped { reason; _ } -> Some (Sim.drop_reason_label reason)
              | _ -> None)
            (Sim.trace sim)
          |> List.sort compare
        in
        Alcotest.(check (list string)) "reasons"
          [ "chaos"; "crashed"; "no-handler" ]
          reasons;
        let m = Sim.metrics sim in
        Alcotest.(check int) "drops" 3 m.Metrics.drops;
        Alcotest.(check int) "chaos share" 1 m.Metrics.chaos_drops);
    Alcotest.test_case "Out_of_steps carries stall diagnostics" `Quick
      (fun () ->
        let sim : int Sim.t = Sim.create ~n:2 ~seed:19 () in
        (* ping-pong forever so the step bound must trip *)
        Sim.set_handler sim 0 (fun ~src:_ m -> Sim.send sim ~src:0 ~dst:1 m);
        Sim.set_handler sim 1 (fun ~src:_ m -> Sim.send sim ~src:1 ~dst:0 m);
        Sim.set_timer sim 0 ~delay:1.0e12 (fun () -> ());
        Sim.send sim ~src:0 ~dst:1 0;
        (try
           Sim.run ~max_steps:50 sim;
           Alcotest.fail "expected Out_of_steps"
         with Sim.Out_of_steps { at_clock; pending; timers; detail } ->
           Alcotest.(check bool) "clock advanced" true (at_clock > 0.0);
           Alcotest.(check int) "one message in flight" 1 pending;
           Alcotest.(check int) "unfired timer counted" 1 timers;
           Alcotest.(check string) "no probe, empty detail" "" detail));
    Alcotest.test_case "Out_of_steps detail comes from the stall probe"
      `Quick (fun () ->
        let sim : int Sim.t = Sim.create ~n:2 ~seed:23 () in
        Sim.set_handler sim 0 (fun ~src:_ m -> Sim.send sim ~src:0 ~dst:1 m);
        Sim.set_handler sim 1 (fun ~src:_ m -> Sim.send sim ~src:1 ~dst:0 m);
        Sim.set_stall_probe sim (fun () ->
            Printf.sprintf "probe: %d pending" (Sim.pending_count sim));
        Sim.send sim ~src:0 ~dst:1 0;
        try
          Sim.run ~max_steps:25 sim;
          Alcotest.fail "expected Out_of_steps"
        with Sim.Out_of_steps { detail; _ } ->
          Alcotest.(check string) "probe rendered" "probe: 1 pending" detail) ]

(* ---------------- oracles -------------------------------------------- *)

let oracle_tests =
  let honest = Pset.of_list [ 0; 1; 2 ] in
  [ Alcotest.test_case "agreement flags honest divergence only" `Quick
      (fun () ->
        let ok =
          Oracle.agreement ~honest ~show:string_of_int
            [| Some 1; Some 1; None; Some 9 |]
        in
        Alcotest.(check int) "corrupted slot ignored" 0 (List.length ok);
        let bad =
          Oracle.agreement ~honest ~show:string_of_int
            [| Some 1; Some 2; Some 1; None |]
        in
        Alcotest.(check int) "one divergence" 1 (Oracle.count_safety bad);
        match bad with
        | [ v ] ->
          Alcotest.(check bool) "safety" true (v.Oracle.severity = Oracle.Safety);
          Alcotest.(check (option int)) "offender" (Some 1) v.Oracle.party
        | _ -> Alcotest.fail "expected exactly one violation");
    Alcotest.test_case "abba validity binds unanimous honest proposals"
      `Quick (fun () ->
        let proposals = [| true; true; true; false |] in
        Alcotest.(check int) "clean" 0
          (List.length
             (Oracle.abba_validity ~honest ~proposals
                [| Some true; Some true; Some true; Some false |]));
        Alcotest.(check int) "invalid decision" 1
          (List.length
             (Oracle.abba_validity ~honest ~proposals
                [| Some true; Some false; Some true; None |]));
        (* mixed honest proposals: nothing to enforce *)
        Alcotest.(check int) "mixed proposals" 0
          (List.length
             (Oracle.abba_validity ~honest ~proposals:[| true; false; true; true |]
                [| Some false; Some false; Some false; None |])));
    Alcotest.test_case "total order: prefixes fine, divergence flagged"
      `Quick (fun () ->
        Alcotest.(check int) "prefix ok" 0
          (List.length
             (Oracle.total_order ~honest
                [| [ "a"; "b" ]; [ "a" ]; [ "a"; "b"; "c" ]; [ "z" ] |]));
        let bad =
          Oracle.total_order ~honest
            [| [ "a"; "b" ]; [ "b"; "a" ]; [ "a"; "b" ]; [] |]
        in
        Alcotest.(check bool) "divergence is safety" true
          (Oracle.count_safety bad > 0);
        let dup = Oracle.total_order ~honest [| [ "a"; "a" ]; []; []; [] |] in
        Alcotest.(check int) "duplicate delivery" 1 (Oracle.count_safety dup));
    Alcotest.test_case "liveness class is separate from safety" `Quick
      (fun () ->
        let vs =
          Oracle.all_decided ~honest [| Some 1; None; Some 1; None |]
          @ Oracle.totality ~honest ~expected:2 [| 2; 1; 2; 0 |]
        in
        Alcotest.(check int) "liveness" 2 (Oracle.count_liveness vs);
        Alcotest.(check int) "no safety" 0 (Oracle.count_safety vs)) ]

(* ---------------- byzantine behaviours ------------------------------- *)

let byzantine_tests =
  let structure = AS.threshold ~n:4 ~t:1 in
  let keyring = Keyring.deal ~rsa_bits:192 ~seed:42 structure in
  let abba_run ~seed behavior =
    let sim = Sim.create ~policy:Sim.Random_order ~n:4 ~seed () in
    let decisions = Array.make 4 None in
    let wrap =
      Byzantine.wrap_of ~sim ~keyring ~seed ~set:(Pset.singleton 3) behavior
    in
    let nodes =
      Stack.deploy_abba ~wrap ~sim ~keyring ~tag:"byz-test"
        ~on_decide:(fun p b -> decisions.(p) <- Some b)
        ()
    in
    for p = 0 to 2 do
      Abba.propose nodes.(p) true
    done;
    Sim.run sim
      ~until:(fun () ->
        Array.for_all Option.is_some (Array.sub decisions 0 3));
    decisions
  in
  [ Alcotest.test_case "silent party cannot block or corrupt ABBA" `Quick
      (fun () ->
        let d = abba_run ~seed:1 Byzantine.silent in
        for p = 0 to 2 do
          Alcotest.(check (option bool))
            (Printf.sprintf "party %d" p)
            (Some true) d.(p)
        done);
    Alcotest.test_case "crash_at fires and the rest still decide" `Quick
      (fun () ->
        let d = abba_run ~seed:2 (Byzantine.crash_at 120.0) in
        Alcotest.(check int) "honest all decide true" 3
          (Array.length
             (Array.sub d 0 3 |> Array.to_seq
             |> Seq.filter (( = ) (Some true))
             |> Array.of_seq)));
    Alcotest.test_case
      "equivocating supports + forged coin shares are survived" `Quick
      (fun () ->
        let d =
          abba_run ~seed:3 (Byzantine.For_abba.byzantine ~tag:"byz-test" ())
        in
        let honest = Pset.of_list [ 0; 1; 2 ] in
        let proposals = [| true; true; true; true |] in
        Alcotest.(check int) "oracles clean" 0
          (List.length (Oracle.check_abba ~honest ~proposals d)));
    Alcotest.test_case "abc equivocator/replayer cannot fork the order"
      `Quick (fun () ->
        let sim = Sim.create ~policy:Sim.Random_order ~n:4 ~seed:4 () in
        let logs = Array.make 4 [] in
        let wrap =
          Byzantine.wrap_of ~sim ~keyring ~seed:4 ~set:(Pset.singleton 3)
            (Byzantine.For_abc.byzantine ~tag:"byz-abc" ())
        in
        let nodes =
          Stack.deploy_abc ~wrap ~sim ~keyring ~tag:"byz-abc"
            ~deliver:(fun p payload -> logs.(p) <- payload :: logs.(p))
            ()
        in
        Abc.broadcast nodes.(0) "one";
        Abc.broadcast nodes.(1) "two";
        let honest = Pset.of_list [ 0; 1; 2 ] in
        Sim.run sim
          ~until:(fun () ->
            Pset.for_all (fun p -> List.length logs.(p) >= 2) honest);
        let ordered = Array.map List.rev logs in
        (* A corrupted party may legitimately inject its own (validly
           signed) payloads; what must survive is the total order and
           delivery of the honest payloads — exactly what the oracles
           check. *)
        Alcotest.(check int) "oracles clean" 0
          (List.length (Oracle.check_abc ~honest ~expected:2 ordered));
        Pset.iter
          (fun p ->
            List.iter
              (fun payload ->
                Alcotest.(check bool)
                  (Printf.sprintf "honest payload %s ordered at %d" payload p)
                  true
                  (List.mem payload ordered.(p)))
              [ "one"; "two" ])
          honest) ]

(* ---------------- campaign regression sweep -------------------------- *)

let campaign_tests =
  [ Alcotest.test_case
      "50-seed sweep: drop/dup-reorder/partition, maximal corrupted set"
      `Slow (fun () ->
        (* Acceptance regression: both protocols, all three chaos
           policies, a maximal corrupted set per run (rotating through
           the structure's maximal sets), 50 seeds.  Safety must hold
           everywhere; liveness wherever channels are reliable. *)
        let cfg =
          Campaign.default_config ~seeds:50
            ~mixes:[ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
            ()
        in
        let rep = Campaign.run cfg in
        Alcotest.(check int) "runs" 300 (List.length rep.Campaign.results);
        List.iter
          (fun (r : Campaign.run_result) ->
            Alcotest.(check bool)
              (Printf.sprintf "corrupted set is maximal (seed %d)" r.Campaign.r_seed)
              true
              (Pset.card r.Campaign.r_corrupted = 1))
          rep.Campaign.results;
        Alcotest.(check int) "zero safety violations" 0
          (Campaign.safety_count rep);
        Alcotest.(check int) "zero liveness violations under reliable policies"
          0
          (Campaign.gating_liveness_count rep));
    Alcotest.test_case
      "50-seed batched sweep: batch=8/window=4 keeps safety and liveness"
      `Slow (fun () ->
        (* PR-4 acceptance regression: rerun the chaos sweep (reliable
           policies only) with the throughput policy enabled and with
           the seed-equivalent default, same seeds; the safety oracles
           (total order included) must stay silent under batching and
           pipelining exactly as they do unbatched. *)
        let run_with abc_policy =
          Campaign.run
            (Campaign.default_config ~seeds:50
               ~protocols:[ Campaign.P_abc ]
               ~policies:
                 [ Campaign.dup_reorder_policy ();
                   Campaign.partition_policy ~n:4 () ]
               ~mixes:
                 [ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
               ~payloads:6 ~abc_policy ())
        in
        List.iter
          (fun (name, rep) ->
            Alcotest.(check int)
              (name ^ ": runs") 100
              (List.length rep.Campaign.results);
            Alcotest.(check int)
              (name ^ ": zero safety violations")
              0 (Campaign.safety_count rep);
            Alcotest.(check int)
              (name ^ ": zero gating liveness violations")
              0
              (Campaign.gating_liveness_count rep))
          [ ("unbatched", run_with Abc.default_policy);
            ( "batched",
              run_with
                { Abc.default_policy with max_batch_msgs = 8; window = 4 } )
          ]);
    Alcotest.test_case
      "50-seed sweep: lazy verification matches eager with fewer share checks"
      `Slow (fun () ->
        (* PR-7 acceptance regression: the same campaign under the
           eager (seed) and lazy crypto policies must make identical
           decisions at identical virtual times with identical oracle
           verdicts — lazy verification may only change *how much* is
           verified, never what the protocol does — while performing
           strictly fewer per-share proof checks. *)
        let cfg =
          Campaign.default_config ~seeds:50
            ~protocols:[ Campaign.P_abba ]
            ~policies:[ Campaign.dup_reorder_policy () ]
            ~mixes:
              [ { Campaign.m_name = "silent"; m_kind = Campaign.Silent };
                { Campaign.m_name = "byzantine"; m_kind = Campaign.Byz } ]
            ()
        in
        let run_with policy =
          Obs_crypto.enable ();
          Obs_crypto.reset ();
          let rep =
            Crypto_policy.with_policy policy (fun () -> Campaign.run cfg)
          in
          let sv = Obs_crypto.count Obs_crypto.Share_verify in
          Obs_crypto.disable ();
          (rep, sv)
        in
        let eager_rep, eager_sv = run_with Crypto_policy.eager in
        let lazy_rep, lazy_sv = run_with Crypto_policy.lazy_batched in
        Alcotest.(check int) "runs" 100 (List.length eager_rep.Campaign.results);
        Alcotest.(check int) "eager: zero safety violations" 0
          (Campaign.safety_count eager_rep);
        Alcotest.(check int) "lazy: zero safety violations" 0
          (Campaign.safety_count lazy_rep);
        Alcotest.(check int) "eager: zero gating liveness violations" 0
          (Campaign.gating_liveness_count eager_rep);
        Alcotest.(check int) "lazy: zero gating liveness violations" 0
          (Campaign.gating_liveness_count lazy_rep);
        List.iter2
          (fun (e : Campaign.run_result) (l : Campaign.run_result) ->
            let tag = Printf.sprintf "seed %d mix %s" e.Campaign.r_seed e.Campaign.r_mix in
            Alcotest.(check bool) (tag ^ ": same decided") true
              (e.Campaign.r_decided = l.Campaign.r_decided);
            Alcotest.(check bool) (tag ^ ": same decide clock") true
              (e.Campaign.r_decide_clock = l.Campaign.r_decide_clock);
            Alcotest.(check int) (tag ^ ": same steps")
              e.Campaign.r_steps l.Campaign.r_steps;
            Alcotest.(check int) (tag ^ ": same violation count")
              (List.length e.Campaign.r_violations)
              (List.length l.Campaign.r_violations))
          eager_rep.Campaign.results lazy_rep.Campaign.results;
        Alcotest.(check bool)
          (Printf.sprintf "strictly fewer share checks (lazy %d < eager %d)"
             lazy_sv eager_sv)
          true
          (lazy_sv < eager_sv && eager_sv > 0));
    Alcotest.test_case "report round-trips and validates" `Quick (fun () ->
        let cfg =
          Campaign.default_config ~seeds:2
            ~protocols:[ Campaign.P_abba ]
            ~mixes:[ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
            ()
        in
        let rep = Campaign.run cfg in
        let doc = Campaign.to_json ~id:"test" ~wall:0.1 rep in
        (match Obs_json.of_string (Obs_json.to_string doc) with
        | Error e -> Alcotest.failf "round-trip parse: %s" e
        | Ok doc' ->
          (match Campaign.validate_json doc' with
          | Ok () -> ()
          | Error e -> Alcotest.failf "validate: %s" e));
        (* decide-time histogram accumulated under layer "faults" *)
        let snap = Obs.snapshot rep.Campaign.obs in
        match
          Obs_registry.find snap
            ~labels:[ ("layer", "faults"); ("protocol", "abba") ]
            "decide_time"
        with
        | Some (Obs_registry.Vhistogram h) ->
          Alcotest.(check bool) "observed once per decided run" true
            (Obs_histogram.count h > 0)
        | _ -> Alcotest.fail "missing decide_time histogram");
    Alcotest.test_case "validator rejects wrong shapes" `Quick (fun () ->
        let check_bad doc =
          Alcotest.(check bool) "rejected" true
            (Result.is_error (Campaign.validate_json doc))
        in
        check_bad (Obs_json.Obj []);
        check_bad (Obs_json.Obj [ ("schema", Obs_json.Str "sintra-bench/1") ]);
        check_bad
          (Obs_json.Obj
             [ ("schema", Obs_json.Str "sintra-faults/1");
               ("experiment", Obs_json.Str "x");
               ("wall_time_s", Obs_json.Float 0.0);
               ("runs", Obs_json.Int (-3)) ])) ]

(* ---------------- crash recovery ------------------------------------- *)

let recovery_tests =
  [ Alcotest.test_case "crashed party: set_handler raises, recover resets"
      `Quick (fun () ->
        let sim : int Sim.t = Sim.create ~n:2 ~seed:7 () in
        let got = ref [] in
        Sim.set_handler sim 1 (fun ~src:_ m -> got := m :: !got);
        Sim.send sim ~src:0 ~dst:1 1;
        Sim.run sim;
        Sim.crash sim 1;
        Alcotest.(check bool) "crashed" true (Sim.is_crashed sim 1);
        (* Re-arming a crashed slot must be an explicit error, not a
           silent resurrection. *)
        (try
           Sim.set_handler sim 1 (fun ~src:_ _ -> ());
           Alcotest.fail "set_handler on a crashed party did not raise"
         with Invalid_argument _ -> ());
        Sim.send sim ~src:0 ~dst:1 2;
        Sim.run sim;
        (* Recovery clears the crash flag and drops the dead handler:
           nothing of the old incarnation survives. *)
        Sim.recover sim 1;
        Alcotest.(check bool) "recovered" false (Sim.is_crashed sim 1);
        Sim.send sim ~src:0 ~dst:1 3;
        Sim.run sim;
        Sim.set_handler sim 1 (fun ~src:_ m -> got := m :: !got);
        Sim.send sim ~src:0 ~dst:1 4;
        Sim.run sim;
        Alcotest.(check (list int))
          "only pre-crash and post-rearm messages delivered" [ 4; 1 ] !got);
    Alcotest.test_case "crash-rejoin: victim rejoins via certified transfer"
      `Quick (fun () ->
        let cfg =
          Rejoin.default_config ~seeds:1 ~payloads:12
            ~scenarios:[ Rejoin.Crash_rejoin ] ~variants:[ false ] ()
        in
        let env = Rejoin.prepare cfg in
        let r =
          Rejoin.run_one env cfg ~scenario:Rejoin.Crash_rejoin ~forged:false
            ~seed:1
        in
        Alcotest.(check bool) "recovered" true r.Rejoin.jr_recovered;
        Alcotest.(check bool) "transferred" true r.Rejoin.jr_transferred;
        Alcotest.(check bool) "transfer moved bytes" true
          (r.Rejoin.jr_transfer_bytes > 0);
        Alcotest.(check int) "no violations" 0
          (List.length r.Rejoin.jr_violations));
    Alcotest.test_case "partition heal: victim catches back up" `Quick
      (fun () ->
        let cfg =
          Rejoin.default_config ~seeds:1 ~payloads:12
            ~scenarios:[ Rejoin.Partition_heal ] ~variants:[ false ] ()
        in
        let env = Rejoin.prepare cfg in
        let r =
          Rejoin.run_one env cfg ~scenario:Rejoin.Partition_heal
            ~forged:false ~seed:2
        in
        Alcotest.(check bool) "recovered" true r.Rejoin.jr_recovered;
        Alcotest.(check int) "no violations" 0
          (List.length r.Rejoin.jr_violations));
    Alcotest.test_case "forged snapshot is rejected on certificate check"
      `Quick (fun () ->
        (* Reliable channels, so the forged server's reply always
           reaches the fetching victim: the rejection is deterministic,
           and recovery must come from the honest quorum. *)
        let cfg =
          Rejoin.default_config ~seeds:1 ~payloads:12 ~drop:0.0
            ~scenarios:[ Rejoin.Crash_rejoin ] ~variants:[ true ] ()
        in
        let env = Rejoin.prepare cfg in
        let r =
          Rejoin.run_one env cfg ~scenario:Rejoin.Crash_rejoin ~forged:true
            ~seed:3
        in
        Alcotest.(check bool) "recovered" true r.Rejoin.jr_recovered;
        Alcotest.(check bool) "transferred" true r.Rejoin.jr_transferred;
        Alcotest.(check bool) "forged reply rejected" true
          (r.Rejoin.jr_rejected > 0);
        Alcotest.(check int) "no violations" 0
          (List.length r.Rejoin.jr_violations));
    Alcotest.test_case "checkpoint GC bounds the delivered log" `Quick
      (fun () ->
        let cfg = Rejoin.default_config ~seeds:1 ~mem_payloads:96 () in
        let env = Rejoin.prepare cfg in
        let m = Rejoin.memory_probe env cfg ~seed:1 in
        Alcotest.(check int) "gc-off log grows with the stream" 96
          m.Rejoin.m_gc_off_peak;
        Alcotest.(check bool)
          (Printf.sprintf "gc-on log stays bounded (%d < 96)"
             m.Rejoin.m_gc_on_peak)
          true
          (m.Rejoin.m_gc_on_peak < 96);
        Alcotest.(check bool) "rounds were retired" true
          (m.Rejoin.m_gc_on_retired > 0);
        Alcotest.(check bool) "checkpoints certified" true
          (m.Rejoin.m_gc_on_ckpt_round > 0));
    Alcotest.test_case
      "50-seed recovery sweep: crash-rejoin + partition-heal, forged server"
      `Slow (fun () ->
        (* Acceptance regression: one replica knocked out mid-stream
           under 30% drop with the link on, brought back, and required
           to agree on the whole digest history; the crash-rejoin victim
           must get there via certified state transfer, and a sweep with
           a forged server must witness an explicit rejection. *)
        let cfg = Rejoin.default_config ~seeds:50 ~payloads:12 () in
        let rep = Rejoin.run ~memory:false cfg in
        Alcotest.(check int) "runs" 200 (List.length rep.Rejoin.results);
        Alcotest.(check int) "zero safety violations" 0
          (Rejoin.safety_count rep);
        Alcotest.(check int) "every victim recovered" 200
          (Rejoin.recovered_count rep);
        List.iter
          (fun (r : Rejoin.run_result) ->
            if r.Rejoin.jr_scenario = Rejoin.Crash_rejoin then
              Alcotest.(check bool)
                (Printf.sprintf "seed %d rejoined via state transfer"
                   r.Rejoin.jr_seed)
                true r.Rejoin.jr_transferred)
          rep.Rejoin.results;
        Alcotest.(check bool) "forged sweep witnessed a rejection" true
          (Rejoin.forged_witnessed rep);
        (* Round-trip the report through the schema validator. *)
        let doc = Rejoin.to_json ~id:"t" ~wall:0.0 rep in
        (match
           Obs_json.of_string (Obs_json.to_canonical_string doc)
         with
        | Error e -> Alcotest.failf "re-parse: %s" e
        | Ok doc' ->
          (match Rejoin.validate_json doc' with
          | Ok () -> ()
          | Error e -> Alcotest.failf "validate: %s" e))) ]

(* ---------------- sustained-load service campaigns ------------------- *)

let svc_campaign_tests =
  let small ?(variants = [ Svc.Drop_arq; Svc.Crash_rejoin ]) ?(seeds = 1) () =
    Svc.default_config ~seeds ~requests:6 ~clients:2 ~window:2 ~keyspace:4
      ~kinds:[ Svc.Directory_svc ] ~variants ()
  in
  [ Alcotest.test_case "client pipeline survives 30% drop with the ARQ link"
      `Quick (fun () ->
        let cfg = small () in
        let env = Svc.prepare cfg in
        let r =
          Svc.run_one env cfg ~kind:Svc.Directory_svc ~variant:Svc.Drop_arq
            ~seed:11
        in
        Alcotest.(check int) "quota met" r.Svc.vr_target r.Svc.vr_completed;
        Alcotest.(check int) "every accepted certificate verified"
          r.Svc.vr_completed r.Svc.vr_verified;
        Alcotest.(check int) "no certificate failures" 0
          r.Svc.vr_cert_failures;
        Alcotest.(check int) "no violations" 0
          (List.length r.Svc.vr_violations));
    Alcotest.test_case "client pipeline survives a crash-rejoin mid-campaign"
      `Quick (fun () ->
        let cfg = small () in
        let env = Svc.prepare cfg in
        let r =
          Svc.run_one env cfg ~kind:Svc.Directory_svc
            ~variant:Svc.Crash_rejoin ~seed:12
        in
        Alcotest.(check bool) "a victim was crashed" true (r.Svc.vr_victim >= 0);
        Alcotest.(check int) "quota met" r.Svc.vr_target r.Svc.vr_completed;
        Alcotest.(check int) "every accepted certificate verified"
          r.Svc.vr_completed r.Svc.vr_verified;
        Alcotest.(check int) "no violations" 0
          (List.length r.Svc.vr_violations));
    Alcotest.test_case "notary sweep drops the crash-rejoin variant" `Quick
      (fun () ->
        Alcotest.(check bool) "crash-rejoin filtered" true
          (Svc.variants_for Svc.Notary_svc
             [ Svc.Benign; Svc.Crash_rejoin ]
          = [ Svc.Benign ]);
        Alcotest.(check bool) "plain kinds keep it" true
          (Svc.variants_for Svc.Ca_svc [ Svc.Crash_rejoin ]
          = [ Svc.Crash_rejoin ]));
    Alcotest.test_case
      "50-seed service sweep: drop-arq + crash-rejoin, certificates and dedup"
      `Slow (fun () ->
        (* Acceptance regression for the client pipeline: 50 seeds per
           variant under 30% chaos drop with the ARQ engine link, and
           with one replica crashed and revived mid-campaign.  Every run
           must close its quota, every accepted reply certificate must
           re-verify, suppressed duplicates must exactly account for the
           replay volume that reached the order (and never exceed the
           clients' resend volume), and the safety oracles — total order
           over digest histories included — must stay silent. *)
        let cfg = small ~seeds:50 () in
        let rep = Svc.run cfg in
        Alcotest.(check int) "runs" 100 (List.length rep.Svc.results);
        Alcotest.(check int) "zero safety violations" 0
          (Svc.safety_count rep);
        Alcotest.(check int) "zero liveness violations" 0
          (Svc.liveness_count rep);
        Alcotest.(check int) "every quota closed" (Svc.target_total rep)
          (Svc.completed_total rep);
        Alcotest.(check int) "zero certificate failures" 0
          (Svc.cert_failures_total rep);
        List.iter
          (fun (r : Svc.run_result) ->
            let tag =
              Printf.sprintf "%s seed %d"
                (Svc.variant_label r.Svc.vr_variant)
                r.Svc.vr_seed
            in
            Alcotest.(check int)
              (tag ^ ": certificates all verified")
              r.Svc.vr_completed r.Svc.vr_verified;
            Alcotest.(check int)
              (tag ^ ": dedup accounts for the replay volume")
              (r.Svc.vr_ordered - r.Svc.vr_executed)
              r.Svc.vr_dup_suppressed;
            Alcotest.(check bool)
              (tag ^ ": suppressed replays never exceed client resends")
              true
              (r.Svc.vr_dup_suppressed <= r.Svc.vr_retries))
          rep.Svc.results;
        (* Round-trip the report through the schema validator. *)
        let doc = Svc.to_json ~id:"t" ~wall:0.0 rep in
        match Obs_json.of_string (Obs_json.to_canonical_string doc) with
        | Error e -> Alcotest.failf "re-parse: %s" e
        | Ok doc' ->
          (match Svc.validate_json doc' with
          | Ok () -> ()
          | Error e -> Alcotest.failf "validate: %s" e));
    Alcotest.test_case "svc validator rejects wrong shapes" `Quick (fun () ->
        let check_bad doc =
          Alcotest.(check bool) "rejected" true
            (Result.is_error (Svc.validate_json doc))
        in
        check_bad (Obs_json.Obj []);
        check_bad (Obs_json.Obj [ ("schema", Obs_json.Str "sintra-recov/1") ]);
        check_bad
          (Obs_json.Obj
             [ ("schema", Obs_json.Str "sintra-svc/1");
               ("experiment", Obs_json.Str "x");
               ("wall_time_s", Obs_json.Float 0.0);
               ("runs", Obs_json.Int 0) ])) ]

let suite =
  ( "faults",
    chaos_tests @ partition_tests @ drop_path_tests @ oracle_tests
    @ byzantine_tests @ campaign_tests @ recovery_tests
    @ svc_campaign_tests )
