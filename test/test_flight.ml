(* Flight recorder: hot-tier windows over the trace ring, durable-tier
   campaign summaries (byte-stable, validated), the compare engine's
   regression verdicts, and replay of the archived worst-case schedules
   found by the adversarial search. *)

let silent_mix = { Campaign.m_name = "silent"; m_kind = Campaign.Silent }

let small_config () =
  Campaign.default_config ~seeds:2
    ~protocols:[ Campaign.P_abba ]
    ~mixes:[ silent_mix ] ()

(* Run a small campaign with a flight recorder attached; returns the
   summary (under the given id) and the raw per-run flights. *)
let record_small ~id () =
  let cfg = small_config () in
  let env = Campaign.prepare cfg in
  let flight = Flight.create ~obs:(Campaign.env_obs env) () in
  let rep = Campaign.run_prepared ~flight env cfg in
  let runs = Flight.runs flight in
  (Flight.summarize ~id ~config:(Campaign.config_json cfg) runs, runs, rep)

(* ---------------- hot tier: ring accounting and windows --------------- *)

let hot_tier_tests =
  [ Alcotest.test_case "ring overwrites are counted, not silent" `Quick
      (fun () ->
        let clock = ref 0.0 in
        let tr = Obs_trace.create ~capacity:4 ~now:(fun () -> !clock) () in
        for k = 0 to 9 do
          clock := float_of_int k;
          Obs_trace.point tr ~layer:"test" (Printf.sprintf "p%d" k)
        done;
        let st = Obs_trace.stats tr in
        Alcotest.(check int) "dropped" 6 st.Obs_trace.records_dropped;
        Alcotest.(check bool) "truncated" true (Obs_trace.truncated tr);
        Alcotest.(check int) "kept" 4 (List.length (Obs_trace.records tr)));
    Alcotest.test_case "window keeps the closest events and counts elisions"
      `Quick (fun () ->
        let clock = ref 0.0 in
        let tr = Obs_trace.create ~capacity:64 ~now:(fun () -> !clock) () in
        for k = 0 to 9 do
          clock := float_of_int k;
          Obs_trace.point tr ~layer:"test" (Printf.sprintf "p%d" k)
        done;
        (* around 5.0 +- 2.0 covers t = 3..7: five records *)
        let all, elided0 =
          Obs_trace.window tr ~around:5.0 ~span:2.0 ~max_events:10
        in
        Alcotest.(check int) "in-window" 5 (List.length all);
        Alcotest.(check int) "nothing elided" 0 elided0;
        let kept, elided =
          Obs_trace.window tr ~around:5.0 ~span:2.0 ~max_events:2
        in
        Alcotest.(check int) "capped" 2 (List.length kept);
        Alcotest.(check int) "elided" 3 elided;
        (* earlier records are elided first; survivors stay oldest-first *)
        Alcotest.(check (list string)) "closest survive" [ "p6"; "p7" ]
          (List.map (fun (r : Obs_trace.record) -> r.Obs_trace.name) kept));
    Alcotest.test_case "recorder cuts bounded windows around anomalies"
      `Quick (fun () ->
        let obs = Obs.create () in
        let policy =
          { Flight.default_policy with
            Flight.trace_capacity = 64;
            window_span = 2.0;
            max_window_events = 3 }
        in
        let rec_ = Flight.create ~policy ~obs () in
        let clock = ref 0.0 in
        Flight.run_begin rec_ ~now:(fun () -> !clock);
        for k = 0 to 9 do
          clock := float_of_int k;
          Obs.point obs ~layer:"test" (Printf.sprintf "e%d" k)
        done;
        Flight.note_anomaly rec_ ~at:5.0 ~detail:"synthetic stall"
          Flight.Stall;
        let key =
          { Flight.protocol = "abba"; policy = "none"; mix = "silent";
            seed = 1 }
        in
        Flight.run_end rec_ ~key ~decided:false ~gating:true
          ~decide_clock:None ~steps:123 ~safety:0 ~liveness:1 ~buffer_peak:0;
        match Flight.runs rec_ with
        | [ r ] ->
          Alcotest.(check bool) "not decided" false r.Flight.f_decided;
          (match r.Flight.f_anomalies with
          | [ a ] ->
            Alcotest.(check string) "kind" "stall"
              (Flight.kind_label a.Flight.a_kind);
            Alcotest.(check int) "window capped" 3
              (List.length a.Flight.a_window);
            Alcotest.(check int) "elided counted" 2 a.Flight.a_elided
          | l -> Alcotest.failf "expected one anomaly, got %d" (List.length l))
        | l -> Alcotest.failf "expected one run, got %d" (List.length l)) ]

(* ---------------- durable tier: determinism and validation ------------ *)

let durable_tests =
  [ Alcotest.test_case
      "same campaign twice gives byte-identical FLIGHT content" `Quick
      (fun () ->
        let s1, _, rep1 = record_small ~id:"det" () in
        let s2, _, rep2 = record_small ~id:"det" () in
        Alcotest.(check bool) "campaign ok" true (Campaign.ok rep1);
        Alcotest.(check bool) "campaign ok again" true (Campaign.ok rep2);
        Alcotest.(check string) "canonical bytes"
          (Obs_json.to_canonical_string (Flight.to_json s1))
          (Obs_json.to_canonical_string (Flight.to_json s2)));
    Alcotest.test_case "summary validates and aggregates per cell" `Quick
      (fun () ->
        let s, runs, _ = record_small ~id:"agg" () in
        (match Flight.validate_json (Flight.to_json s) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "validate: %s" e);
        Alcotest.(check int) "run count" (List.length runs) s.Flight.s_runs;
        (* 3 default policies x 1 protocol x 1 mix *)
        Alcotest.(check int) "cells" 3 (List.length s.Flight.s_cells);
        List.iter
          (fun (c : Flight.cell) ->
            Alcotest.(check int)
              (Printf.sprintf "cell %s runs" c.Flight.c_policy)
              2 c.Flight.c_runs;
            Alcotest.(check int)
              (Printf.sprintf "cell %s decide histogram" c.Flight.c_policy)
              c.Flight.c_decided
              (Obs_histogram.count c.Flight.c_decide))
          s.Flight.s_cells;
        (* per-run counter deltas roll up to layered totals *)
        Alcotest.(check bool) "rollups present" true
          (s.Flight.s_rollups <> []));
    Alcotest.test_case "validator rejects wrong shapes" `Quick (fun () ->
        let check_bad doc =
          Alcotest.(check bool) "rejected" true
            (Result.is_error (Flight.validate_json doc))
        in
        check_bad (Obs_json.Obj []);
        check_bad (Obs_json.Obj [ ("schema", Obs_json.Str "sintra-bench/1") ]);
        check_bad
          (Obs_json.Obj
             [ ("schema", Obs_json.Str "sintra-flight/1");
               ("experiment", Obs_json.Str "x");
               ("runs", Obs_json.Int (-1)) ])) ]

(* ---------------- compare engine -------------------------------------- *)

let compare_tests =
  [ Alcotest.test_case "comparing a run against itself is all-neutral"
      `Quick (fun () ->
        let s, _, _ = record_small ~id:"self" () in
        let doc = Flight.to_json s in
        match Compare.compare_docs ~baseline:doc ~candidate:doc () with
        | Error e -> Alcotest.failf "compare: %s" e
        | Ok rep ->
          Alcotest.(check bool) "ok" true (Compare.ok rep);
          Alcotest.(check int) "no regressions" 0 rep.Compare.regressed;
          Alcotest.(check int) "no improvements" 0 rep.Compare.improved;
          Alcotest.(check bool) "rows extracted" true
            (List.length rep.Compare.rows > 10));
    Alcotest.test_case "degraded candidate regresses strict metrics" `Quick
      (fun () ->
        let s, runs, _ = record_small ~id:"base" () in
        let cfg = small_config () in
        (* sabotage the candidate: one undecided run with a safety trip *)
        let worse =
          match runs with
          | r :: rest ->
            { r with
              Flight.f_decided = false;
              f_decide_clock = None;
              f_safety = r.Flight.f_safety + 1 }
            :: rest
          | [] -> Alcotest.fail "no runs"
        in
        let s' =
          Flight.summarize ~id:"base" ~config:(Campaign.config_json cfg) worse
        in
        match
          Compare.compare_docs ~baseline:(Flight.to_json s)
            ~candidate:(Flight.to_json s') ()
        with
        | Error e -> Alcotest.failf "compare: %s" e
        | Ok rep ->
          Alcotest.(check bool) "gate trips" false (Compare.ok rep);
          let regressed_metrics =
            List.filter_map
              (fun (r : Compare.row) ->
                if r.Compare.verdict = Compare.Regressed then
                  Some r.Compare.metric
                else None)
              rep.Compare.rows
          in
          List.iter
            (fun needle ->
              Alcotest.(check bool)
                (needle ^ " regressed") true
                (List.exists
                   (fun m ->
                     (* substring match *)
                     let ln = String.length needle and lm = String.length m in
                     let rec scan i =
                       i + ln <= lm && (String.sub m i ln = needle || scan (i + 1))
                     in
                     scan 0)
                   regressed_metrics))
            [ "safety"; "decided" ]);
    Alcotest.test_case "schema mismatch is an error, not a regression"
      `Quick (fun () ->
        let s, _, rep = record_small ~id:"mix" () in
        let faults_doc = Campaign.to_json ~id:"mix" ~wall:0.1 rep in
        match
          Compare.compare_docs ~baseline:(Flight.to_json s)
            ~candidate:faults_doc ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a structural error") ]

(* ---------------- fixture replay --------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_tests =
  [ Alcotest.test_case
      "archived worst-case schedules replay with zero safety violations"
      `Slow (fun () ->
        let dir = "fixtures" in
        let names =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f ->
                 String.length f > 6 && String.sub f 0 6 = "worst_")
          |> List.sort compare
        in
        Alcotest.(check bool)
          (Printf.sprintf "at least 3 fixtures (found %d)" (List.length names))
          true
          (List.length names >= 3);
        List.iter
          (fun name ->
            let path = Filename.concat dir name in
            match Obs_json.of_string (read_file path) with
            | Error e -> Alcotest.failf "%s: parse: %s" name e
            | Ok doc ->
              (match Schedule_search.replay doc with
              | Error e -> Alcotest.failf "%s: replay: %s" name e
              | Ok rep ->
                Alcotest.(check int)
                  (name ^ ": zero safety violations")
                  0
                  (Campaign.safety_count rep)))
          names);
    Alcotest.test_case "genome JSON round-trips" `Quick (fun () ->
        let g = Schedule_search.seed_genome in
        match Schedule_search.genome_of_json (Schedule_search.genome_json g)
        with
        | Some g' -> Alcotest.(check bool) "equal" true (g = g')
        | None -> Alcotest.fail "round-trip failed") ]

let suite =
  ( "flight",
    hot_tier_tests @ durable_tests @ compare_tests @ fixture_tests )
