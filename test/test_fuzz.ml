(* Protocol fuzzing: a corrupted party injects *randomly generated*
   protocol messages (not just the hand-crafted attacks of
   test_adversarial.ml) while honest parties run normally; the safety
   invariants must hold for every seed.

   This is cheap-and-cheerful model checking: the simulator is
   deterministic given the seed, so any failing seed is immediately
   reproducible. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

let qtest ?(count = 15) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* Byzantine message generators pick from a small alphabet so collisions
   with honest traffic actually happen. *)
let payloads = [| "a"; "b"; "hello world"; "" |]

let fuzz_rbc_msg rng : Rbc.msg =
  let p = payloads.(Prng.int rng (Array.length payloads)) in
  match Prng.int rng 3 with
  | 0 -> Rbc.Send p
  | 1 -> Rbc.Echo p
  | _ -> Rbc.Ready p

let fuzz_tests =
  [ qtest "rbc: consistency under random byzantine injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let outputs = Array.make 4 None in
        let nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:0 ~deliver:(fun me p ->
              outputs.(me) <- Some p) ()
        in
        (* party 3 is corrupted: on every delivery it injects 1-3 random
           messages to random destinations *)
        let rng = Prng.create ~seed:(seed lxor 0x5A5A) in
        Sim.set_handler sim 3 (fun ~src:_ (_ : Rbc.msg) ->
            for _ = 0 to Prng.int rng 3 do
              Sim.send sim ~src:3 ~dst:(Prng.int rng 4) (fuzz_rbc_msg rng)
            done);
        Rbc.broadcast nodes.(0) "hello world";
        (try Sim.run sim ~max_steps:200_000 with Sim.Out_of_steps _ -> ());
        (* consistency: honest deliveries agree (validity may fail only if
           the fuzzer got lucky against a *corrupted* sender — here the
           sender is honest, so everyone must deliver its payload) *)
        List.for_all
          (fun i -> outputs.(i) = Some "hello world")
          [ 0; 1; 2 ]);
    qtest "cbc: uniqueness under random byzantine injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let outputs = Array.make 4 None in
        let _nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"fuzz" ~sender:0
            ~deliver:(fun me p _ -> outputs.(me) <- Some p)
            ()
        in
        (* corrupted SENDER: equivocates and injects junk finals *)
        let rng = Prng.create ~seed:(seed lxor 0xA5A5) in
        Sim.set_handler sim 0 (fun ~src:_ (m : Cbc.msg) ->
            (match m with
            | Cbc.Echo share ->
              (* try to abuse the echo as a certificate by itself *)
              ignore share;
              Sim.send sim ~src:0 ~dst:(Prng.int rng 4)
                (Cbc.Final
                   ( payloads.(Prng.int rng (Array.length payloads)),
                     Keyring.Vector_cert [] ))
            | Cbc.Send _ | Cbc.Final _ -> ());
            ());
        Sim.send sim ~src:0 ~dst:1 (Cbc.Send "x");
        Sim.send sim ~src:0 ~dst:2 (Cbc.Send "x");
        Sim.send sim ~src:0 ~dst:3 (Cbc.Send "y");
        (try Sim.run sim ~max_steps:200_000 with Sim.Out_of_steps _ -> ());
        (* uniqueness: all honest deliveries (if any) agree *)
        let delivered = List.filter_map (fun i -> outputs.(i)) [ 1; 2; 3 ] in
        (match delivered with
        | [] -> true
        | x :: rest -> List.for_all (( = ) x) rest));
    qtest ~count:10 "abba: agreement under random byzantine vote injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let decisions = Array.make 4 None in
        let tag = Printf.sprintf "fuzz-%d" seed in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr ~tag
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        let rng = Prng.create ~seed:(seed lxor 0x3C3C) in
        (* corrupted party 3 plays honest-but-also-noisy: it runs the
           protocol (so quorums exist even when the honest trio is split)
           and additionally injects well-formed-but-unjustified votes *)
        let honest = fun ~src m -> Abba.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src m ->
            if Prng.int rng 4 = 0 then begin
              let b = Prng.bool rng in
              let r = 1 + Prng.int rng 2 in
              let share =
                Keyring.cert_share kr ~party:3
                  (Ro.encode
                     [ "abba-pre"; tag; string_of_int r; string_of_bool b ])
              in
              Sim.send sim ~src:3 ~dst:(Prng.int rng 4)
                (Abba.Prevote
                   { Abba.pv_round = r;
                     pv_vote = b;
                     pv_just = Abba.J_support [];
                     pv_share = share })
            end;
            honest ~src m);
        Array.iteri (fun i node -> Abba.propose node (i mod 2 = 0)) nodes;
        (try Sim.run sim ~max_steps:400_000 with Sim.Out_of_steps _ -> ());
        (* agreement among honest deciders; and all honest decide *)
        let ds = List.filter_map (fun i -> decisions.(i)) [ 0; 1; 2 ] in
        List.length ds = 3
        && match ds with d :: rest -> List.for_all (( = ) d) rest | [] -> false)
  ]

(* ---- batch-frame codec (Codec.encode_batch / decode_batch) ----------
   The batching layer's safety rests on the codec never mis-splitting a
   frame: a decoded frame is exactly the encoded payload list, and every
   malformed byte string (truncation, garbage, trailing bytes) is
   rejected outright rather than decoded to a partial or shifted list. *)

let gen_payload =
  (* arbitrary bytes, including NULs, the frame magic, and length-prefix
     look-alikes *)
  QCheck2.Gen.(
    oneof
      [ string_size ~gen:(char_range '\000' '\255') (0 -- 64);
        map (fun s -> "SBF1" ^ s) (string_size (0 -- 8));
        return "" ])

let gen_payloads = QCheck2.Gen.(list_size (0 -- 12) gen_payload)

let codec_tests =
  [ qtest ~count:200 "batch codec: decode o encode = identity" gen_payloads
      (fun ps -> Codec.decode_batch (Codec.encode_batch ps) = Some ps);
    qtest ~count:200 "batch codec: every proper prefix is rejected"
      gen_payloads
      (fun ps ->
        let frame = Codec.encode_batch ps in
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          match Codec.decode_batch (String.sub frame 0 len) with
          | None -> ()
          | Some _ -> ok := false
        done;
        !ok);
    qtest ~count:200 "batch codec: trailing garbage is rejected"
      QCheck2.Gen.(pair gen_payloads (string_size (1 -- 16)))
      (fun (ps, junk) ->
        Codec.decode_batch (Codec.encode_batch ps ^ junk) = None);
    qtest ~count:200 "batch codec: random byte strings never mis-split"
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 96))
      (fun s ->
        (* decoding arbitrary bytes either fails or round-trips to the
           very same bytes — no third outcome where payloads appear out
           of thin air *)
        match Codec.decode_batch s with
        | None -> true
        | Some ps -> Codec.encode_batch ps = s);
    qtest ~count:200 "batch codec: corrupting one byte never mis-splits"
      QCheck2.Gen.(triple gen_payloads small_nat (char_range '\000' '\255'))
      (fun (ps, pos, c) ->
        let frame = Bytes.of_string (Codec.encode_batch ps) in
        let pos = pos mod Bytes.length frame in
        Bytes.set frame pos c;
        let frame = Bytes.to_string frame in
        match Codec.decode_batch frame with
        | None -> true
        | Some ps' -> Codec.encode_batch ps' = frame)
  ]

let suite = ("fuzz", fuzz_tests @ codec_tests)
