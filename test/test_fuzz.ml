(* Protocol fuzzing: a corrupted party injects *randomly generated*
   protocol messages (not just the hand-crafted attacks of
   test_adversarial.ml) while honest parties run normally; the safety
   invariants must hold for every seed.

   This is cheap-and-cheerful model checking: the simulator is
   deterministic given the seed, so any failing seed is immediately
   reproducible. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

let qtest ?(count = 15) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* Byzantine message generators pick from a small alphabet so collisions
   with honest traffic actually happen. *)
let payloads = [| "a"; "b"; "hello world"; "" |]

let fuzz_rbc_msg rng : Rbc.msg =
  let p = payloads.(Prng.int rng (Array.length payloads)) in
  match Prng.int rng 3 with
  | 0 -> Rbc.Send p
  | 1 -> Rbc.Echo p
  | _ -> Rbc.Ready p

let fuzz_tests =
  [ qtest "rbc: consistency under random byzantine injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let outputs = Array.make 4 None in
        let nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:0 ~deliver:(fun me p ->
              outputs.(me) <- Some p) ()
        in
        (* party 3 is corrupted: on every delivery it injects 1-3 random
           messages to random destinations *)
        let rng = Prng.create ~seed:(seed lxor 0x5A5A) in
        Sim.set_handler sim 3 (fun ~src:_ (_ : Rbc.msg Link.frame) ->
            for _ = 0 to Prng.int rng 3 do
              Sim.send sim ~src:3 ~dst:(Prng.int rng 4)
                (Link.Raw (fuzz_rbc_msg rng))
            done);
        Rbc.broadcast nodes.(0) "hello world";
        (try Sim.run sim ~max_steps:200_000 with Sim.Out_of_steps _ -> ());
        (* consistency: honest deliveries agree (validity may fail only if
           the fuzzer got lucky against a *corrupted* sender — here the
           sender is honest, so everyone must deliver its payload) *)
        List.for_all
          (fun i -> outputs.(i) = Some "hello world")
          [ 0; 1; 2 ]);
    qtest "cbc: uniqueness under random byzantine injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let outputs = Array.make 4 None in
        let _nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"fuzz" ~sender:0
            ~deliver:(fun me p _ -> outputs.(me) <- Some p)
            ()
        in
        (* corrupted SENDER: equivocates and injects junk finals *)
        let rng = Prng.create ~seed:(seed lxor 0xA5A5) in
        Sim.set_handler sim 0 (fun ~src:_ (frame : Cbc.msg Link.frame) ->
            (match Link.payload frame with
            | Some (Cbc.Echo share) ->
              (* try to abuse the echo as a certificate by itself *)
              ignore share;
              Sim.send sim ~src:0 ~dst:(Prng.int rng 4)
                (Link.Raw
                   (Cbc.Final
                      ( payloads.(Prng.int rng (Array.length payloads)),
                        Keyring.Vector_cert [] )))
            | Some (Cbc.Send _ | Cbc.Final _) | None -> ());
            ());
        Sim.send sim ~src:0 ~dst:1 (Link.Raw (Cbc.Send "x"));
        Sim.send sim ~src:0 ~dst:2 (Link.Raw (Cbc.Send "x"));
        Sim.send sim ~src:0 ~dst:3 (Link.Raw (Cbc.Send "y"));
        (try Sim.run sim ~max_steps:200_000 with Sim.Out_of_steps _ -> ());
        (* uniqueness: all honest deliveries (if any) agree *)
        let delivered = List.filter_map (fun i -> outputs.(i)) [ 1; 2; 3 ] in
        (match delivered with
        | [] -> true
        | x :: rest -> List.for_all (( = ) x) rest));
    qtest ~count:10 "abba: agreement under random byzantine vote injection"
      QCheck2.Gen.int
      (fun seed ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let decisions = Array.make 4 None in
        let tag = Printf.sprintf "fuzz-%d" seed in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr ~tag
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        let rng = Prng.create ~seed:(seed lxor 0x3C3C) in
        (* corrupted party 3 plays honest-but-also-noisy: it runs the
           protocol (so quorums exist even when the honest trio is split)
           and additionally injects well-formed-but-unjustified votes *)
        let honest = fun ~src m -> Abba.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src frame ->
            match Link.payload frame with
            | None -> ()
            | Some m ->
              if Prng.int rng 4 = 0 then begin
                let b = Prng.bool rng in
                let r = 1 + Prng.int rng 2 in
                let share =
                  Keyring.cert_share kr ~party:3
                    (Ro.encode
                       [ "abba-pre"; tag; string_of_int r; string_of_bool b ])
                in
                Sim.send sim ~src:3 ~dst:(Prng.int rng 4)
                  (Link.Raw
                     (Abba.Prevote
                        { Abba.pv_round = r;
                          pv_vote = b;
                          pv_just = Abba.J_support [];
                          pv_share = share }))
              end;
              honest ~src m);
        Array.iteri (fun i node -> Abba.propose node (i mod 2 = 0)) nodes;
        (try Sim.run sim ~max_steps:400_000 with Sim.Out_of_steps _ -> ());
        (* agreement among honest deciders; and all honest decide *)
        let ds = List.filter_map (fun i -> decisions.(i)) [ 0; 1; 2 ] in
        List.length ds = 3
        && match ds with d :: rest -> List.for_all (( = ) d) rest | [] -> false)
  ]

(* ---- batch-frame codec (Codec.encode_batch / decode_batch) ----------
   The batching layer's safety rests on the codec never mis-splitting a
   frame: a decoded frame is exactly the encoded payload list, and every
   malformed byte string (truncation, garbage, trailing bytes) is
   rejected outright rather than decoded to a partial or shifted list. *)

let gen_payload =
  (* arbitrary bytes, including NULs, the frame magic, and length-prefix
     look-alikes *)
  QCheck2.Gen.(
    oneof
      [ string_size ~gen:(char_range '\000' '\255') (0 -- 64);
        map (fun s -> "SBF1" ^ s) (string_size (0 -- 8));
        return "" ])

let gen_payloads = QCheck2.Gen.(list_size (0 -- 12) gen_payload)

let codec_tests =
  [ qtest ~count:200 "batch codec: decode o encode = identity" gen_payloads
      (fun ps -> Codec.decode_batch (Codec.encode_batch ps) = Some ps);
    qtest ~count:200 "batch codec: every proper prefix is rejected"
      gen_payloads
      (fun ps ->
        let frame = Codec.encode_batch ps in
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          match Codec.decode_batch (String.sub frame 0 len) with
          | None -> ()
          | Some _ -> ok := false
        done;
        !ok);
    qtest ~count:200 "batch codec: trailing garbage is rejected"
      QCheck2.Gen.(pair gen_payloads (string_size (1 -- 16)))
      (fun (ps, junk) ->
        Codec.decode_batch (Codec.encode_batch ps ^ junk) = None);
    qtest ~count:200 "batch codec: random byte strings never mis-split"
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 96))
      (fun s ->
        (* decoding arbitrary bytes either fails or round-trips to the
           very same bytes — no third outcome where payloads appear out
           of thin air *)
        match Codec.decode_batch s with
        | None -> true
        | Some ps -> Codec.encode_batch ps = s);
    qtest ~count:200 "batch codec: corrupting one byte never mis-splits"
      QCheck2.Gen.(triple gen_payloads small_nat (char_range '\000' '\255'))
      (fun (ps, pos, c) ->
        let frame = Bytes.of_string (Codec.encode_batch ps) in
        let pos = pos mod Bytes.length frame in
        Bytes.set frame pos c;
        let frame = Bytes.to_string frame in
        match Codec.decode_batch frame with
        | None -> true
        | Some ps' -> Codec.encode_batch ps' = frame)
  ]

(* ---- checkpoint codecs (Codec.encode_snapshot / encode_ckpt) --------
   Catch-up installs remote state, so these frames cross a trust
   boundary: the snapshot's bytes are the hashed statement a certificate
   signs, and the certified frame pairs that snapshot with the
   certificate.  Canonicity (decode o encode = identity, decode never
   accepts bytes that re-encode differently) is what makes the hash
   binding sound; strictness (truncation / bit flips / trailing bytes
   rejected whole) keeps a Byzantine server from smuggling a frame that
   parses two ways. *)

let gen_snapshot =
  QCheck2.Gen.(
    map3
      (fun round app digests -> Codec.encode_snapshot ~round ~app ~digests)
      (0 -- 1_000_000)
      (string_size ~gen:(char_range '\000' '\255') (0 -- 48))
      (list_size (0 -- 10)
         (string_size ~gen:(char_range '\000' '\255') (0 -- 40))))

let gen_ckpt =
  QCheck2.Gen.(
    map2
      (fun snapshot cert -> Codec.encode_ckpt ~snapshot ~cert)
      gen_snapshot
      (string_size ~gen:(char_range '\000' '\255') (0 -- 64)))

let ckpt_codec_tests =
  [ qtest ~count:200 "snapshot codec: decode o encode = identity"
      QCheck2.Gen.(
        triple (0 -- 1_000_000)
          (string_size ~gen:(char_range '\000' '\255') (0 -- 48))
          (list_size (0 -- 10)
             (string_size ~gen:(char_range '\000' '\255') (0 -- 40))))
      (fun (round, app, digests) ->
        Codec.decode_snapshot (Codec.encode_snapshot ~round ~app ~digests)
        = Some (round, app, digests));
    qtest ~count:200 "snapshot codec: every proper prefix is rejected"
      gen_snapshot
      (fun frame ->
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_snapshot (String.sub frame 0 len) <> None then
            ok := false
        done;
        !ok);
    qtest ~count:200 "snapshot codec: single bit flip never decodes canonically"
      QCheck2.Gen.(triple gen_snapshot small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let b = Bytes.of_string frame in
        let pos = pos mod Bytes.length b in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
        let flipped = Bytes.to_string b in
        (* the flipped frame either fails outright or re-encodes to the
           same flipped bytes — it can never alias the original's hash *)
        match Codec.decode_snapshot flipped with
        | None -> true
        | Some (round, app, digests) ->
          Codec.encode_snapshot ~round ~app ~digests = flipped);
    qtest ~count:200 "ckpt codec: decode o encode = identity"
      QCheck2.Gen.(
        pair gen_snapshot
          (string_size ~gen:(char_range '\000' '\255') (0 -- 64)))
      (fun (snapshot, cert) ->
        Codec.decode_ckpt (Codec.encode_ckpt ~snapshot ~cert)
        = Some (snapshot, cert));
    qtest ~count:200 "ckpt codec: truncation and trailing bytes rejected"
      QCheck2.Gen.(pair gen_ckpt (string_size (1 -- 16)))
      (fun (frame, junk) ->
        let prefixes_fail = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_ckpt (String.sub frame 0 len) <> None then
            prefixes_fail := false
        done;
        !prefixes_fail && Codec.decode_ckpt (frame ^ junk) = None);
    qtest ~count:200 "ckpt codec: random bytes never mis-split"
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 120))
      (fun s ->
        match Codec.decode_ckpt s with
        | None -> true
        | Some (snapshot, cert) -> Codec.encode_ckpt ~snapshot ~cert = s)
  ]

(* ---- reliable link layer (PR 5) -------------------------------------
   Two properties the liveness claim rests on: the retransmit schedule
   is a pure function of the policy seed (so lossy sweeps are exactly
   replayable), and delivery is exactly-once no matter how the chaos
   layer duplicates, reorders or drops DATA frames.  Plus strict-codec
   fuzz for the link-frame wire format. *)

(* Record the retransmit delays of an endpoint whose peer never acks:
   send one payload, fire the timer [rounds] times, collect each armed
   delay. *)
let backoff_schedule ~seed ~rounds =
  let policy =
    { Link.default_policy with jitter = 0.5; rto = 100.0; seed }
  in
  let timers = Queue.create () in
  let delays = ref [] in
  let ep =
    Link.create ~policy ~me:0 ~n:2
      ~raw_send:(fun _ _ -> ())
      ~timer:(fun ~delay cb ->
        delays := delay :: !delays;
        Queue.push cb timers)
      ~deliver:(fun ~src:_ _ -> ())
      ()
  in
  Link.send ep 1 "probe";
  for _ = 1 to rounds do
    let pending = Queue.length timers in
    for _ = 1 to pending do
      (Queue.pop timers) ()
    done
  done;
  List.rev !delays

let link_fuzz_tests =
  [ qtest ~count:100 "link: retransmit schedule is a function of the seed"
      QCheck2.Gen.int
      (fun seed ->
        let a = backoff_schedule ~seed ~rounds:6 in
        let b = backoff_schedule ~seed ~rounds:6 in
        List.length a = 7 && a = b);
    qtest ~count:100
      "link: exactly-once delivery under duplicate/reorder/drop chaos"
      QCheck2.Gen.int
      (fun seed ->
        let n = 4 in
        let payloads = List.init 5 (fun i -> Printf.sprintf "m-%d" i) in
        let sim = Sim.create ~n ~seed () in
        Sim.set_chaos sim
          (Some
             { Sim.benign_chaos with
               default_link =
                 { Sim.drop = 0.25; duplicate = 0.25; reorder = 0.25; delay = 0.0 } });
        let got = Array.make n [] in
        let eps =
          Array.init n (fun me ->
              Link.create
                ~policy:{ Link.default_policy with seed = seed land 0xffff }
                ~me ~n
                ~raw_send:(fun dst f -> Sim.send sim ~src:me ~dst f)
                ~timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
                ~deliver:(fun ~src m -> got.(me) <- (src, m) :: got.(me))
                ())
        in
        Array.iteri (fun me ep -> Sim.set_handler sim me (Link.handle ep)) eps;
        List.iter (fun p -> Link.broadcast eps.(0) p) payloads;
        (try Sim.run sim ~max_steps:400_000 with Sim.Out_of_steps _ -> ());
        (* every party got every payload exactly once, from party 0 *)
        Array.for_all
          (fun l ->
            List.sort compare l
            = List.sort compare (List.map (fun p -> (0, p)) payloads))
          got);
    qtest ~count:200 "link codec: decode o encode = identity"
      QCheck2.Gen.(
        oneof
          [ map (fun p -> Link.Raw p) gen_payload;
            map2
              (fun s p -> Link.Data { seq = 1 + abs s; payload = p })
              small_int gen_payload;
            map2
              (fun c sel ->
                let c = abs c in
                let sel =
                  List.sort_uniq compare (List.map (fun s -> c + 1 + abs s) sel)
                in
                Link.Ack { cum = c; sel })
              small_int
              (list_size (0 -- 6) small_int) ])
      (fun frame ->
        Codec.decode_link_frame (Codec.encode_link_frame frame) = Some frame);
    qtest ~count:200 "link codec: random bytes never mis-decode"
      QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 96))
      (fun s ->
        match Codec.decode_link_frame s with
        | None -> true
        | Some frame -> Codec.encode_link_frame frame = s);
    qtest ~count:200 "link codec: every proper prefix is rejected"
      QCheck2.Gen.(pair gen_payload small_nat)
      (fun (p, seq) ->
        let frame =
          Codec.encode_link_frame (Link.Data { seq = seq + 1; payload = p })
        in
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_link_frame (String.sub frame 0 len) <> None then
            ok := false
        done;
        !ok)
  ]

(* ---- batched and lazy crypto verification (PR 7) --------------------
   Two properties the batched hot path rests on: a corrupted proof in a
   k-batch is always detected and attributed by bisection (no matter
   which component was corrupted), and the lazy combine path never
   accepts a bad combined output — it either prunes down to the honest
   value or refuses.  Corruptions are random field/group elements, not
   hand-picked special cases. *)

module B = Bignum
module G = Schnorr_group

let fps = G.default ~bits:96 ()
let fsharing = lazy (Dl_sharing.deal fps th41 (Prng.create ~seed:2000))
let frsa = lazy (Rsa_threshold.deal ~bits:192 ~n:4 ~k:2 (Prng.create ~seed:2001))

let nonzero_exp rng =
  let rec go () =
    let r = G.random_exponent fps rng in
    if B.sign r = 0 then go () else r
  in
  go ()

(* k distinct parties out of [0, n). *)
let pick_distinct rng ~n ~k =
  let rec go acc =
    if List.length acc = k then acc
    else
      let p = Prng.int rng n in
      if List.mem p acc then go acc else go (p :: acc)
  in
  go []

let crypto_fuzz_tests =
  [ qtest ~count:200 "batch: one corrupted proof always attributed"
      QCheck2.Gen.(pair int (int_range 2 9))
      (fun (seed, k) ->
        let rng = Prng.create ~seed in
        let domain = "fuzz-batch" in
        let g2 = G.hash_to_elt fps ~domain:"fuzz-base" [ "b" ] in
        let batch =
          List.init k (fun _ ->
              let x = G.random_exponent fps rng in
              let h1 = G.exp_g fps x and h2 = G.exp fps g2 x in
              let p = Dleq.prove fps ~domain ~x ~g1:fps.G.g ~h1 ~g2 ~h2 in
              ({ Dleq.g1 = fps.G.g; h1; g2; h2 }, p))
        in
        let bad = Prng.int rng k in
        let delta = nonzero_exp rng in
        let batch =
          List.mapi
            (fun i ((s : Dleq.statement), (p : Dleq.t)) ->
              if i <> bad then (s, p)
              else
                match Prng.int rng 3 with
                | 0 ->
                  (* corrupted response *)
                  (s, { p with Dleq.z = B.add_mod p.Dleq.z delta fps.G.q })
                | 1 ->
                  (* tampered statement: random subgroup multiplier *)
                  ( { s with
                      Dleq.h2 = G.mul fps s.Dleq.h2 (G.exp fps g2 delta) },
                    p )
                | _ ->
                  (* batch poisoning: bogus commitment under honest (c, z) *)
                  (s, { p with Dleq.a1 = G.exp_g fps delta }))
            batch
        in
        (not (Dleq.batch_verify fps ~domain batch))
        && Dleq.batch_find_bad fps ~domain batch = [ bad ]);
    qtest ~count:70 "lazy coin combine never accepts a corrupted value"
      QCheck2.Gen.(pair int (int_range 1 3))
      (fun (seed, ncorrupt) ->
        let sharing = Lazy.force fsharing in
        let rng = Prng.create ~seed:(seed lxor 0x7777) in
        let name = Printf.sprintf "fz-%d" seed in
        let honest =
          List.init 3 (fun i -> (i, Coin.generate_share sharing ~party:i ~name))
        in
        let corrupted = pick_distinct rng ~n:3 ~k:ncorrupt in
        let shares =
          List.map
            (fun (i, ss) ->
              if List.mem i corrupted then
                ( i,
                  List.map
                    (fun (s : Coin.share) ->
                      { s with
                        Coin.value =
                          G.mul fps s.Coin.value
                            (G.exp_g fps (nonzero_exp rng)) })
                    ss )
              else (i, ss))
            honest
        in
        let got =
          Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
              Coin.combine sharing ~name ~avail:(Pset.of_list [ 0; 1; 2 ])
                shares ())
        in
        if 3 - ncorrupt >= 2 then
          (* enough honest parties: prunes to exactly the honest coin *)
          got <> None
          && got
             = Coin.combine sharing ~name ~avail:(Pset.of_list [ 0; 1 ])
                 (List.filteri (fun i _ -> i < 2) honest)
                 ()
        else got = None);
    qtest ~count:70 "lazy tdh2 combine never accepts a corrupted plaintext"
      QCheck2.Gen.(pair int (int_range 1 3))
      (fun (seed, ncorrupt) ->
        let sharing = Lazy.force fsharing in
        let rng = Prng.create ~seed:(seed lxor 0x1234) in
        let msg = Printf.sprintf "payload-%d" seed in
        let ct =
          Tdh2.encrypt sharing (Prng.create ~seed:(seed lxor 0x9)) ~label:"fz"
            msg
        in
        let honest =
          List.filter_map
            (fun i ->
              Option.map
                (fun s -> (i, s))
                (Tdh2.decryption_share sharing ~party:i ct))
            [ 0; 1; 2 ]
        in
        let corrupted = pick_distinct rng ~n:3 ~k:ncorrupt in
        let shares =
          List.map
            (fun (i, ss) ->
              if List.mem i corrupted then
                ( i,
                  List.map
                    (fun (s : Tdh2.dec_share) ->
                      { s with
                        Tdh2.value =
                          G.mul fps s.Tdh2.value
                            (G.exp_g fps (nonzero_exp rng)) })
                    ss )
              else (i, ss))
            honest
        in
        let got =
          Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
              Tdh2.combine sharing ct ~avail:(Pset.of_list [ 0; 1; 2 ]) shares)
        in
        if 3 - ncorrupt >= 2 then got = Some msg else got = None);
    qtest ~count:70 "lazy rsa combine never emits an invalid signature"
      QCheck2.Gen.(pair int (int_range 1 3))
      (fun (seed, ncorrupt) ->
        let keys = Lazy.force frsa in
        let nn = keys.Rsa_threshold.pk.Rsa_threshold.n_modulus in
        let rng = Prng.create ~seed:(seed lxor 0x4321) in
        let msg = Printf.sprintf "doc-%d" seed in
        let honest =
          List.map (fun i -> Rsa_threshold.sign_share keys ~party:i msg) [ 0; 1; 2 ]
        in
        let corrupted = pick_distinct rng ~n:3 ~k:ncorrupt in
        let shares =
          List.map
            (fun (s : Rsa_threshold.share) ->
              if List.mem s.Rsa_threshold.signer corrupted then
                { s with
                  Rsa_threshold.x =
                    B.add_mod s.Rsa_threshold.x
                      (B.of_int (1 + Prng.int rng 0x3FFFFFFF))
                      nn }
              else s)
            honest
        in
        match
          Crypto_policy.with_policy Crypto_policy.lazy_batched (fun () ->
              Rsa_threshold.combine keys msg shares)
        with
        | Some y ->
          3 - ncorrupt >= 2 && Rsa_threshold.verify keys.Rsa_threshold.pk msg y
        | None -> 3 - ncorrupt < 2)
  ]

(* ---- service frames (PR 9) ------------------------------------------
   The client/server wire format: SVQ1 requests are what gets ordered
   (their digest keys the whole reply protocol), SVR1 replies carry
   signature shares from untrusted servers, and SVC1 certificates are
   handed to third parties.  All three cross trust boundaries, so the
   same canonicity/strictness properties as the checkpoint codecs. *)

let gen_svc_bytes lo hi =
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (lo -- hi))

let gen_svc_request =
  QCheck2.Gen.(
    map3
      (fun client nonce body -> Codec.encode_svc_request ~client ~nonce ~body)
      (0 -- 1_000_000)
      (gen_svc_bytes 1 16) (gen_svc_bytes 0 64))

let gen_svc_reply =
  QCheck2.Gen.(
    map2
      (fun (fast, req_digest, server) (response, share) ->
        Codec.encode_svc_reply ~fast ~req_digest ~server ~response ~share)
      (triple bool (gen_svc_bytes 0 40) (0 -- 999))
      (pair (gen_svc_bytes 0 64) (gen_svc_bytes 0 64)))

let gen_reply_cert =
  QCheck2.Gen.(
    map2
      (fun (fast, req_digest) (response, cert) ->
        Codec.encode_reply_cert ~fast ~req_digest ~response ~cert)
      (pair bool (gen_svc_bytes 0 40))
      (pair (gen_svc_bytes 0 64) (gen_svc_bytes 0 80)))

(* Arbitrary bytes, weighted toward frames that start with the right
   magic so the parser's interior checks get exercised too. *)
let gen_svc_garbage magic =
  QCheck2.Gen.(
    oneof
      [ string_size ~gen:(char_range '\000' '\255') (0 -- 96);
        map (fun s -> magic ^ s)
          (string_size ~gen:(char_range '\000' '\255') (0 -- 64));
        return "" ])

let svc_codec_tests =
  [ qtest ~count:200 "svc request codec: decode o encode = identity"
      QCheck2.Gen.(
        triple (0 -- 1_000_000) (gen_svc_bytes 1 16) (gen_svc_bytes 0 64))
      (fun (client, nonce, body) ->
        Codec.decode_svc_request
          (Codec.encode_svc_request ~client ~nonce ~body)
        = Some (client, nonce, body));
    qtest ~count:200 "svc request codec: every proper prefix is rejected"
      gen_svc_request
      (fun frame ->
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_svc_request (String.sub frame 0 len) <> None then
            ok := false
        done;
        !ok);
    qtest ~count:200 "svc request codec: trailing garbage is rejected"
      QCheck2.Gen.(pair gen_svc_request (gen_svc_bytes 1 16))
      (fun (frame, junk) -> Codec.decode_svc_request (frame ^ junk) = None);
    qtest ~count:200 "svc request codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_svc_request small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let b = Bytes.of_string frame in
        let pos = pos mod Bytes.length b in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
        let flipped = Bytes.to_string b in
        match Codec.decode_svc_request flipped with
        | None -> true
        | Some (client, nonce, body) ->
          Codec.encode_svc_request ~client ~nonce ~body = flipped);
    qtest ~count:200 "svc request codec: random bytes never mis-split"
      (gen_svc_garbage "SVQ1")
      (fun s ->
        match Codec.decode_svc_request s with
        | None -> true
        | Some (client, nonce, body) ->
          Codec.encode_svc_request ~client ~nonce ~body = s);
    qtest ~count:200 "svc reply codec: decode o encode = identity"
      QCheck2.Gen.(
        pair
          (triple bool (gen_svc_bytes 0 40) (0 -- 999))
          (pair (gen_svc_bytes 0 64) (gen_svc_bytes 0 64)))
      (fun ((fast, req_digest, server), (response, share)) ->
        Codec.decode_svc_reply
          (Codec.encode_svc_reply ~fast ~req_digest ~server ~response ~share)
        = Some (fast, req_digest, server, response, share));
    qtest ~count:200 "svc reply codec: every proper prefix is rejected"
      gen_svc_reply
      (fun frame ->
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_svc_reply (String.sub frame 0 len) <> None then
            ok := false
        done;
        !ok);
    qtest ~count:200 "svc reply codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_svc_reply small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let b = Bytes.of_string frame in
        let pos = pos mod Bytes.length b in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
        let flipped = Bytes.to_string b in
        match Codec.decode_svc_reply flipped with
        | None -> true
        | Some (fast, req_digest, server, response, share) ->
          Codec.encode_svc_reply ~fast ~req_digest ~server ~response ~share
          = flipped);
    qtest ~count:200 "svc reply codec: random bytes never mis-split"
      (gen_svc_garbage "SVR1")
      (fun s ->
        match Codec.decode_svc_reply s with
        | None -> true
        | Some (fast, req_digest, server, response, share) ->
          Codec.encode_svc_reply ~fast ~req_digest ~server ~response ~share
          = s);
    qtest ~count:200 "reply cert codec: decode o encode = identity"
      QCheck2.Gen.(
        pair
          (pair bool (gen_svc_bytes 0 40))
          (pair (gen_svc_bytes 0 64) (gen_svc_bytes 0 80)))
      (fun ((fast, req_digest), (response, cert)) ->
        Codec.decode_reply_cert
          (Codec.encode_reply_cert ~fast ~req_digest ~response ~cert)
        = Some (fast, req_digest, response, cert));
    qtest ~count:200
      "reply cert codec: truncation and trailing bytes rejected"
      QCheck2.Gen.(pair gen_reply_cert (gen_svc_bytes 1 16))
      (fun (frame, junk) ->
        let prefixes_fail = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_reply_cert (String.sub frame 0 len) <> None then
            prefixes_fail := false
        done;
        !prefixes_fail && Codec.decode_reply_cert (frame ^ junk) = None);
    qtest ~count:200 "reply cert codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_reply_cert small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let b = Bytes.of_string frame in
        let pos = pos mod Bytes.length b in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
        let flipped = Bytes.to_string b in
        match Codec.decode_reply_cert flipped with
        | None -> true
        | Some (fast, req_digest, response, cert) ->
          Codec.encode_reply_cert ~fast ~req_digest ~response ~cert = flipped);
    qtest ~count:200 "reply cert codec: random bytes never mis-split"
      (gen_svc_garbage "SVC1")
      (fun s ->
        match Codec.decode_reply_cert s with
        | None -> true
        | Some (fast, req_digest, response, cert) ->
          Codec.encode_reply_cert ~fast ~req_digest ~response ~cert = s)
  ]

(* ---- epoch frames and refresh-package integrity (PR 10) -------------
   The reconfiguration frames carry field and group elements, so on top
   of the usual codec properties (round trip, prefix rejection,
   canonical bit flips) we check the semantic one the epoch protocol
   rests on: a refresh package corrupted in transit — any single bit of
   its wire frame, or any single field — never passes
   [Proactive.verify_refresh]. *)

let gen_refresh_pkg =
  QCheck2.Gen.map
    (fun seed ->
      let sharing = Lazy.force fsharing in
      let rng = Prng.create ~seed:(seed lxor 0x5e9) in
      Proactive.make_refresh sharing ~dealer:(Prng.int rng 4) rng)
    QCheck2.Gen.int

let gen_refresh_frame =
  QCheck2.Gen.map (Codec.encode_refresh_pkg fps) gen_refresh_pkg

let gen_reshare_frame =
  QCheck2.Gen.map
    (fun seed ->
      let sharing = Lazy.force fsharing in
      let rng = Prng.create ~seed:(seed lxor 0xa11) in
      let target = Proactive.target_of sharing th41 in
      let pkg =
        Proactive.make_reshare sharing target ~dealer:(Prng.int rng 4) rng
      in
      Codec.encode_reshare_pkg fps pkg)
    QCheck2.Gen.int

let rec gen_formula rng depth =
  if depth = 0 || Prng.int rng 3 = 0 then
    Monotone_formula.Leaf (Prng.int rng 7)
  else begin
    let c = 1 + Prng.int rng 3 in
    let k = 1 + Prng.int rng c in
    Monotone_formula.Threshold
      (k, List.init c (fun _ -> gen_formula rng (depth - 1)))
  end

let gen_adv_frame =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Prng.create ~seed:(seed lxor 0xbeef) in
      let epoch = Prng.int rng 1000 in
      let target =
        if Prng.int rng 2 = 0 then None
        else Some (1 + Prng.int rng 7, gen_formula rng 3)
      in
      let pkgs =
        List.init (Prng.int rng 4) (fun i ->
            String.init (Prng.int rng 40) (fun j ->
                Char.chr ((i * 31 + j + Prng.int rng 256) land 0xff)))
      in
      Codec.encode_epoch_adv ~epoch ~target ~pkgs)
    QCheck2.Gen.int

let reencode_refresh s =
  match Codec.decode_refresh_pkg fps s with
  | None -> None
  | Some p -> Some (Codec.encode_refresh_pkg fps p)

let reencode_reshare s =
  match Codec.decode_reshare_pkg fps s with
  | None -> None
  | Some p -> Some (Codec.encode_reshare_pkg fps p)

let reencode_adv s =
  match Codec.decode_epoch_adv s with
  | None -> None
  | Some (epoch, target, pkgs) ->
    Some (Codec.encode_epoch_adv ~epoch ~target ~pkgs)

let flip_bit s pos bit =
  let b = Bytes.of_string s in
  let pos = pos mod Bytes.length b in
  Bytes.set b pos
    (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let epoch_codec_tests =
  [ qtest ~count:200 "refresh pkg codec: decode o encode = identity"
      gen_refresh_frame
      (fun frame -> reencode_refresh frame = Some frame);
    qtest ~count:200 "refresh pkg codec: every proper prefix is rejected"
      gen_refresh_frame
      (fun frame ->
        let ok = ref true in
        for len = 0 to String.length frame - 1 do
          if Codec.decode_refresh_pkg fps (String.sub frame 0 len) <> None
          then ok := false
        done;
        !ok && Codec.decode_refresh_pkg fps (frame ^ "x") = None);
    qtest ~count:200 "refresh pkg codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_refresh_frame small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let flipped = flip_bit frame pos bit in
        match reencode_refresh flipped with
        | None -> true
        | Some re -> re = flipped);
    qtest ~count:100 "refresh pkg: a bit flipped in transit never verifies"
      QCheck2.Gen.(triple QCheck2.Gen.int small_nat (0 -- 7))
      (fun (seed, pos, bit) ->
        let sharing = Lazy.force fsharing in
        let rng = Prng.create ~seed:(seed lxor 0x5e9) in
        let pkg = Proactive.make_refresh sharing ~dealer:(Prng.int rng 4) rng in
        let frame = Codec.encode_refresh_pkg fps pkg in
        let flipped = flip_bit frame pos bit in
        (* Acceptance in the epoch protocol is [verify_refresh] plus the
           channel binding dealer = sender; a flip must fail one. *)
        match Codec.decode_refresh_pkg fps flipped with
        | None -> true
        | Some pkg' ->
          Codec.encode_refresh_pkg fps pkg' = frame
          || not
               (Proactive.verify_refresh sharing pkg'
               && pkg'.Proactive.dealer = pkg.Proactive.dealer));
    qtest ~count:100 "refresh pkg: any single corrupted field never verifies"
      QCheck2.Gen.int
      (fun seed ->
        let sharing = Lazy.force fsharing in
        let rng = Prng.create ~seed:(seed lxor 0x0dd) in
        let pkg = Proactive.make_refresh sharing ~dealer:(Prng.int rng 4) rng in
        let delta = nonzero_exp rng in
        let bad =
          match Prng.int rng 4 with
          | 0 -> { pkg with Proactive.dealer = (pkg.Proactive.dealer + 1) mod 4 }
          | 1 ->
            let k = Prng.int rng (List.length pkg.Proactive.deltas) in
            { pkg with
              Proactive.deltas =
                List.mapi
                  (fun i (ss : Lsss.subshare) ->
                    if i <> k then ss
                    else
                      { ss with
                        Lsss.value = B.add_mod ss.Lsss.value delta fps.G.q })
                  pkg.Proactive.deltas }
          | 2 ->
            let keys = Array.copy pkg.Proactive.delta_keys in
            let k = Prng.int rng (Array.length keys) in
            keys.(k) <- G.mul fps keys.(k) (G.exp_g fps delta);
            { pkg with Proactive.delta_keys = keys }
          | _ ->
            let k = Prng.int rng (List.length pkg.Proactive.deltas) in
            { pkg with
              Proactive.deltas =
                List.mapi
                  (fun i (ss : Lsss.subshare) ->
                    if i <> k then ss
                    else { ss with Lsss.party = (ss.Lsss.party + 1) mod 4 })
                  pkg.Proactive.deltas }
        in
        not
          (Proactive.verify_refresh sharing bad
          && bad.Proactive.dealer = pkg.Proactive.dealer));
    qtest ~count:100 "reshare pkg codec: decode o encode = identity"
      gen_reshare_frame
      (fun frame -> reencode_reshare frame = Some frame);
    qtest ~count:150 "reshare pkg codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_reshare_frame small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let flipped = flip_bit frame pos bit in
        match reencode_reshare flipped with
        | None -> true
        | Some re -> re = flipped);
    qtest ~count:200 "epoch adv codec: decode o encode = identity"
      gen_adv_frame
      (fun frame -> reencode_adv frame = Some frame);
    qtest ~count:200 "epoch adv codec: single bit flip stays canonical"
      QCheck2.Gen.(triple gen_adv_frame small_nat (1 -- 7))
      (fun (frame, pos, bit) ->
        let flipped = flip_bit frame pos bit in
        match reencode_adv flipped with
        | None -> true
        | Some re -> re = flipped);
    qtest ~count:200 "epoch cert codec: round trip and strict framing"
      QCheck2.Gen.(pair string string)
      (fun (body, cert) ->
        let frame = Codec.encode_epoch_cert ~body ~cert in
        Codec.decode_epoch_cert frame = Some (body, cert)
        && Codec.decode_epoch_cert (frame ^ "y") = None
        && (String.length frame = 0
           || Codec.decode_epoch_cert
                (String.sub frame 0 (String.length frame - 1))
              = None))
  ]

let suite =
  ( "fuzz",
    fuzz_tests @ codec_tests @ ckpt_codec_tests @ link_fuzz_tests
    @ crypto_fuzz_tests @ svc_codec_tests @ epoch_codec_tests )
