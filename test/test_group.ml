(* Schnorr group tests: group laws, membership validation, hashing. *)

module B = Bignum
module G = Schnorr_group

let ps = G.default ~bits:96 ()

let qtest ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_elt =
  QCheck2.Gen.(map (fun seed ->
      let rng = Prng.create ~seed in
      G.exp_g ps (G.random_exponent ps rng)) int)

let unit_tests =
  [ Alcotest.test_case "parameters are a safe-prime group" `Quick (fun () ->
        let rng = Prng.create ~seed:1 in
        Alcotest.(check bool) "p prime" true (Primes.is_probable_prime rng ps.G.p);
        Alcotest.(check bool) "q prime" true (Primes.is_probable_prime rng ps.G.q);
        Alcotest.(check bool) "p = 2q+1" true
          (B.equal ps.G.p (B.succ (B.shift_left ps.G.q 1)));
        Alcotest.(check bool) "g in group" true (G.is_element ps ps.G.g);
        Alcotest.(check bool) "g not one" false (G.elt_equal ps.G.g B.one));
    Alcotest.test_case "generator order" `Quick (fun () ->
        Alcotest.(check bool) "g^q = 1" true
          (G.elt_equal (G.exp ps ps.G.g ps.G.q) (G.one ps)));
    Alcotest.test_case "membership rejects" `Quick (fun () ->
        Alcotest.(check bool) "0" false (G.is_element ps B.zero);
        Alcotest.(check bool) "p" false (G.is_element ps ps.G.p);
        (* p - 1 has order 2, not in the subgroup *)
        Alcotest.(check bool) "p-1" false (G.is_element ps (B.pred ps.G.p)));
    Alcotest.test_case "hash_to_elt lands in group" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) s true
              (G.is_element ps (G.hash_to_elt ps ~domain:"t" [ s ])))
          [ ""; "a"; "coin-42"; String.make 1000 'x' ]);
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let x = G.exp_g ps (B.of_int 12345) in
        match G.elt_of_bytes ps (G.elt_to_bytes ps x) with
        | Some y -> Alcotest.(check bool) "eq" true (G.elt_equal x y)
        | None -> Alcotest.fail "roundtrip failed")
  ]

let prop_tests =
  [ qtest "closure + membership" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
        G.is_element ps (G.mul ps a b));
    qtest "associativity" (QCheck2.Gen.triple gen_elt gen_elt gen_elt)
      (fun (a, b, c) ->
        G.elt_equal (G.mul ps (G.mul ps a b) c) (G.mul ps a (G.mul ps b c)));
    qtest "commutativity" (QCheck2.Gen.pair gen_elt gen_elt) (fun (a, b) ->
        G.elt_equal (G.mul ps a b) (G.mul ps b a));
    qtest "inverse" gen_elt (fun a ->
        G.elt_equal (G.mul ps a (G.inv ps a)) (G.one ps));
    qtest "exp homomorphism"
      QCheck2.Gen.(triple gen_elt (int_bound 1000) (int_bound 1000))
      (fun (a, e1, e2) ->
        G.elt_equal
          (G.exp ps a (B.of_int (e1 + e2)))
          (G.mul ps (G.exp ps a (B.of_int e1)) (G.exp ps a (B.of_int e2))));
    qtest "exp_g matches exp" QCheck2.Gen.(int_bound 100000) (fun e ->
        G.elt_equal (G.exp_g ps (B.of_int e)) (G.exp ps ps.G.g (B.of_int e)));
    qtest "exp2 = mul of exps"
      QCheck2.Gen.(quad gen_elt (int_bound 1000000) gen_elt (int_bound 1000000))
      (fun (a, x, b, y) ->
        let x = B.of_int x and y = B.of_int y in
        G.elt_equal (G.exp2 ps a x b y)
          (G.mul ps (G.exp ps a x) (G.exp ps b y)));
    qtest "exp2 with prepared bases = mul of exps"
      QCheck2.Gen.(quad gen_elt (int_bound 1000000) gen_elt (int_bound 1000000))
      (fun (a, x, b, y) ->
        let x = B.of_int x and y = B.of_int y in
        G.prepare_base ps a;
        let reference = G.mul ps (G.exp ps a x) (G.exp ps b y) in
        let one_table = G.exp2 ps a x b y in
        G.prepare_base ps b;
        G.elt_equal one_table reference
        && G.elt_equal (G.exp2 ps a x b y) reference);
    qtest "fixed-base exp matches pow_mod" QCheck2.Gen.(pair gen_elt int)
      (fun (a, seed) ->
        let e = G.random_exponent ps (Prng.create ~seed) in
        G.prepare_base ps a;
        G.elt_equal (G.exp ps a e)
          (B.pow_mod ~base:a ~exp:(B.erem e ps.G.q) ~modulus:ps.G.p));
    qtest "multi_exp = folded product"
      QCheck2.Gen.(
        list_size (int_range 0 5) (pair gen_elt (int_bound 1000000)))
      (fun pairs ->
        let pairs = List.map (fun (b, e) -> (b, B.of_int e)) pairs in
        G.elt_equal (G.multi_exp ps pairs)
          (List.fold_left
             (fun acc (b, e) -> G.mul ps acc (G.exp ps b e))
             (G.one ps) pairs))
  ]

let suite = ("group", unit_tests @ prop_tests)
