(* Reliable link layer tests (PR 5): the ARQ machinery in isolation
   over a hand-pumped wire, the strict link-frame codec, the simulator
   timer/crash interaction it depends on, and the end-to-end claims —
   a link-off deployment is bit-identical to the pre-link stack (golden
   digests pinned from the previous revision) and a link-on deployment
   restores liveness under probabilistic message loss. *)

module R = Obs_registry
module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

(* ---------------- hand-pumped endpoint harness ----------------------- *)

(* Two (or [n]) endpoints joined by an explicit frame queue and a manual
   timer list: tests decide exactly which frames arrive and which timers
   fire, with no simulator in the loop. *)
type 'm harness = {
  eps : 'm Link.t array;
  wire : (int * int * 'm Link.frame) Queue.t;  (* src, dst, frame *)
  timers : (int * float * (unit -> unit)) Queue.t;  (* owner, delay, cb *)
  got : (int * 'm) list array;  (* per party, newest first *)
}

let harness ?obs ?(policy = Link.default_policy) n =
  let wire = Queue.create () in
  let timers = Queue.create () in
  let got = Array.make n [] in
  let eps =
    Array.init n (fun me ->
        Link.create ?obs ~policy ~me ~n
          ~raw_send:(fun dst frame -> Queue.push (me, dst, frame) wire)
          ~timer:(fun ~delay cb -> Queue.push (me, delay, cb) timers)
          ~deliver:(fun ~src m -> got.(me) <- (src, m) :: got.(me))
          ())
  in
  { eps; wire; timers; got }

(* Deliver queued frames (optionally filtered) until the wire is empty. *)
let pump ?(keep = fun ~src:_ ~dst:_ _ -> true) h =
  while not (Queue.is_empty h.wire) do
    let src, dst, frame = Queue.pop h.wire in
    if keep ~src ~dst frame then Link.handle h.eps.(dst) ~src frame
  done

(* Fire every pending timer once (retransmit timers re-arm themselves). *)
let fire_timers h =
  let pending = Queue.length h.timers in
  for _ = 1 to pending do
    let _, _, cb = Queue.pop h.timers in
    cb ()
  done

let drop_all ~src:_ ~dst:_ _ = false

let delivered h me = List.rev h.got.(me)

(* ---------------- unit tests ----------------------------------------- *)

let unit_tests =
  [ Alcotest.test_case "policy validation rejects bad fields" `Quick
      (fun () ->
        let bad p =
          match Link.validate_policy p with
          | () -> Alcotest.fail "invalid policy accepted"
          | exception Invalid_argument _ -> ()
        in
        bad { Link.default_policy with rto = 0.0 };
        bad { Link.default_policy with backoff = 0.5 };
        bad { Link.default_policy with max_rto = 1.0 };
        bad { Link.default_policy with jitter = -0.1 };
        bad { Link.default_policy with window = 0 };
        bad { Link.default_policy with ack_delay = -1.0 };
        Link.validate_policy Link.default_policy);
    Alcotest.test_case "lossless wire: exactly-once, window drains" `Quick
      (fun () ->
        let h = harness 2 in
        List.iter
          (fun m -> Link.send h.eps.(0) 1 m)
          [ "a"; "b"; "c"; "d"; "e" ];
        pump h;
        Alcotest.(check (list (pair int string)))
          "all delivered once, in order"
          [ (0, "a"); (0, "b"); (0, "c"); (0, "d"); (0, "e") ]
          (delivered h 1);
        Alcotest.(check int) "window drained" 0 (Link.in_flight h.eps.(0) 1);
        Alcotest.(check int) "no backlog" 0 (Link.backlog h.eps.(0) 1);
        Alcotest.(check int) "no retransmits" 0
          (Link.retransmits h.eps.(0)));
    Alcotest.test_case "duplicate DATA is suppressed and re-acked" `Quick
      (fun () ->
        let h = harness 2 in
        let frame = Link.Data { seq = 1; payload = "x" } in
        Link.handle h.eps.(1) ~src:0 frame;
        let acks_before = Queue.length h.wire in
        Link.handle h.eps.(1) ~src:0 frame;
        Alcotest.(check (list (pair int string)))
          "delivered exactly once" [ (0, "x") ] (delivered h 1);
        Alcotest.(check int) "duplicate counted" 1
          (Link.dup_suppressed h.eps.(1));
        Alcotest.(check bool) "duplicate re-acked immediately" true
          (Queue.length h.wire > acks_before));
    Alcotest.test_case
      "out-of-order arrival delivers immediately, cum catches up" `Quick
      (fun () ->
        let h = harness 2 in
        Link.handle h.eps.(1) ~src:0 (Link.Data { seq = 2; payload = "b" });
        (* the gap ack advertises seq 2 selectively *)
        let _, _, ack1 = Queue.pop h.wire in
        (match ack1 with
        | Link.Ack { cum; sel } ->
          Alcotest.(check int) "cum before gap fill" 0 cum;
          Alcotest.(check (list int)) "sel names the gap" [ 2 ] sel
        | _ -> Alcotest.fail "expected an ACK");
        Link.handle h.eps.(1) ~src:0 (Link.Data { seq = 1; payload = "a" });
        let _, _, ack2 = Queue.pop h.wire in
        (match ack2 with
        | Link.Ack { cum; sel } ->
          Alcotest.(check int) "cum after gap fill" 2 cum;
          Alcotest.(check (list int)) "sel empty" [] sel
        | _ -> Alcotest.fail "expected an ACK");
        Alcotest.(check (list (pair int string)))
          "unordered delivery, both exactly once"
          [ (0, "b"); (0, "a") ]
          (delivered h 1));
    Alcotest.test_case "selective ack clears holes in the window" `Quick
      (fun () ->
        let h = harness 2 in
        List.iter (fun m -> Link.send h.eps.(0) 1 m) [ "a"; "b"; "c" ];
        Alcotest.(check int) "three in flight" 3 (Link.in_flight h.eps.(0) 1);
        Link.handle h.eps.(0) ~src:1 (Link.Ack { cum = 0; sel = [ 2 ] });
        Alcotest.(check int) "hole cleared" 2 (Link.in_flight h.eps.(0) 1);
        Link.handle h.eps.(0) ~src:1 (Link.Ack { cum = 3; sel = [] });
        Alcotest.(check int) "cumulative clears the rest" 0
          (Link.in_flight h.eps.(0) 1));
    Alcotest.test_case "retransmission backs off exponentially to the cap"
      `Quick (fun () ->
        let policy =
          { Link.default_policy with
            rto = 100.0;
            backoff = 2.0;
            max_rto = 350.0;
            jitter = 0.0 }
        in
        let h = harness ~policy 2 in
        Link.send h.eps.(0) 1 "m";
        pump ~keep:drop_all h;  (* the wire eats everything *)
        Alcotest.(check (float 1e-9)) "initial rto" 100.0
          (Link.rto_current h.eps.(0) 1);
        fire_timers h;
        pump ~keep:drop_all h;
        Alcotest.(check int) "one retransmit" 1 (Link.retransmits h.eps.(0));
        Alcotest.(check (float 1e-9)) "doubled" 200.0
          (Link.rto_current h.eps.(0) 1);
        fire_timers h;
        pump ~keep:drop_all h;
        Alcotest.(check (float 1e-9)) "capped" 350.0
          (Link.rto_current h.eps.(0) 1);
        fire_timers h;
        pump ~keep:drop_all h;
        Alcotest.(check (float 1e-9)) "stays capped" 350.0
          (Link.rto_current h.eps.(0) 1);
        Alcotest.(check int) "three retransmits" 3
          (Link.retransmits h.eps.(0));
        (* progress resets the backoff *)
        Link.handle h.eps.(0) ~src:1 (Link.Ack { cum = 1; sel = [] });
        Alcotest.(check (float 1e-9)) "ack resets rto" 100.0
          (Link.rto_current h.eps.(0) 1));
    Alcotest.test_case "full window back-pressures into a FIFO backlog"
      `Quick (fun () ->
        let policy = { Link.default_policy with window = 2 } in
        let h = harness ~policy 2 in
        List.iter
          (fun m -> Link.send h.eps.(0) 1 m)
          [ "a"; "b"; "c"; "d"; "e" ];
        Alcotest.(check int) "window full" 2 (Link.in_flight h.eps.(0) 1);
        Alcotest.(check int) "rest parked" 3 (Link.backlog h.eps.(0) 1);
        Alcotest.(check int) "peak is total depth" 5
          (Link.buffer_peak h.eps.(0));
        (* acking the window head admits backlog entries in order *)
        Link.handle h.eps.(0) ~src:1 (Link.Ack { cum = 2; sel = [] });
        Alcotest.(check int) "window refilled" 2 (Link.in_flight h.eps.(0) 1);
        Alcotest.(check int) "backlog drained by two" 1
          (Link.backlog h.eps.(0) 1);
        pump h;
        Link.handle h.eps.(0) ~src:1 (Link.Ack { cum = 5; sel = [] });
        pump h;
        Alcotest.(check (list (pair int string)))
          "delivery preserves submission order"
          [ (0, "a"); (0, "b"); (0, "c"); (0, "d"); (0, "e") ]
          (delivered h 1));
    Alcotest.test_case
      "unreachable peer: in-flight stays bounded, gauge records the peak"
      `Quick (fun () ->
        let obs = Obs.create () in
        let policy = { Link.default_policy with window = 4 } in
        let h = harness ~obs ~policy 2 in
        for i = 1 to 100 do
          Link.send h.eps.(0) 1 (string_of_int i)
        done;
        pump ~keep:drop_all h;
        (* many timer rounds: the retransmit set must not grow *)
        for _ = 1 to 10 do
          fire_timers h;
          pump ~keep:drop_all h
        done;
        Alcotest.(check int) "retransmit buffer bounded by window" 4
          (Link.in_flight h.eps.(0) 1);
        Alcotest.(check int) "backlog holds the rest" 96
          (Link.backlog h.eps.(0) 1);
        Alcotest.(check int) "peak recorded" 100 (Link.buffer_peak h.eps.(0));
        Alcotest.(check bool) "retransmissions kept trying" true
          (Link.retransmits h.eps.(0) >= 40);
        let snap = Obs.snapshot obs in
        (match R.find snap ~labels:[ ("layer", "link") ] "link_buffer_peak" with
        | Some (R.Vgauge g) ->
          Alcotest.(check (float 1e-9)) "link_buffer_peak gauge" 100.0 g
        | _ -> Alcotest.fail "link_buffer_peak gauge missing");
        Alcotest.(check bool) "link_retransmit counter" true
          (Option.value ~default:0
             (R.counter_value snap ~labels:[ ("layer", "link") ]
                "link_retransmit")
          >= 40));
    Alcotest.test_case "peers outside the server set pass through as Raw"
      `Quick (fun () ->
        let h = harness 2 in
        Link.send h.eps.(0) 7 "client-bound";
        let _, dst, frame = Queue.pop h.wire in
        Alcotest.(check int) "destination kept" 7 dst;
        match frame with
        | Link.Raw m -> Alcotest.(check string) "raw passthrough" "client-bound" m
        | _ -> Alcotest.fail "expected Raw");
    Alcotest.test_case "delayed acks batch behind one timer" `Quick
      (fun () ->
        let policy = { Link.default_policy with ack_delay = 50.0 } in
        let h = harness ~policy 2 in
        Link.handle h.eps.(1) ~src:0 (Link.Data { seq = 1; payload = "a" });
        Link.handle h.eps.(1) ~src:0 (Link.Data { seq = 2; payload = "b" });
        Alcotest.(check int) "no ack on the wire yet" 0 (Queue.length h.wire);
        Alcotest.(check int) "one ack timer armed" 1 (Queue.length h.timers);
        fire_timers h;
        let _, _, frame = Queue.pop h.wire in
        match frame with
        | Link.Ack { cum; sel } ->
          Alcotest.(check int) "batched cum" 2 cum;
          Alcotest.(check (list int)) "no holes" [] sel
        | _ -> Alcotest.fail "expected an ACK")
  ]

(* ---------------- link-frame codec ----------------------------------- *)

let codec_tests =
  [ Alcotest.test_case "link frames round-trip through the codec" `Quick
      (fun () ->
        List.iter
          (fun frame ->
            match Codec.decode_link_frame (Codec.encode_link_frame frame) with
            | Some frame' ->
              Alcotest.(check bool) "round trip" true (frame = frame')
            | None -> Alcotest.fail "decode failed")
          [ Link.Raw "";
            Link.Raw "payload with \000 bytes";
            Link.Data { seq = 1; payload = "hello" };
            Link.Data { seq = 123456789; payload = "" };
            Link.Ack { cum = 0; sel = [] };
            Link.Ack { cum = 7; sel = [ 9; 12; 40 ] } ]);
    Alcotest.test_case "strict decode rejects malformed frames" `Quick
      (fun () ->
        let reject s =
          match Codec.decode_link_frame s with
          | None -> ()
          | Some _ -> Alcotest.failf "accepted malformed frame %S" s
        in
        reject "";
        reject "SLF";
        reject "XLF1\000";
        reject "SLF1";  (* missing kind *)
        reject "SLF1\003";  (* unknown kind *)
        let good =
          Codec.encode_link_frame (Link.Data { seq = 3; payload = "abc" })
        in
        reject (String.sub good 0 (String.length good - 1));  (* truncated *)
        reject (good ^ "x");  (* trailing garbage *)
        (* selective entries must be ascending and above cum *)
        let enc_ack cum sel =
          Codec.encode_link_frame (Link.Ack { cum = cum; sel })
        in
        Alcotest.(check bool) "ascending sel accepted" true
          (Codec.decode_link_frame (enc_ack 2 [ 3; 5 ]) <> None);
        reject (enc_ack 2 [ 5; 3 ]);
        reject (enc_ack 2 [ 3; 3 ]);
        reject (enc_ack 4 [ 3 ]))
  ]

(* ---------------- simulator timer hygiene (crash regression) --------- *)

let timer_tests =
  [ Alcotest.test_case "crashed party's timers are purged and inert" `Quick
      (fun () ->
        let sim : unit Sim.t = Sim.create ~n:2 ~seed:1 () in
        let fired = Array.make 2 0 in
        Sim.set_timer sim 0 ~delay:10.0 (fun () ->
            fired.(0) <- fired.(0) + 1);
        Sim.set_timer sim 1 ~delay:10.0 (fun () ->
            fired.(1) <- fired.(1) + 1);
        Sim.crash sim 0;
        (* timers set after the crash must be inert, not just unfired *)
        Sim.set_timer sim 0 ~delay:5.0 (fun () -> fired.(0) <- fired.(0) + 1);
        Sim.run sim;
        Alcotest.(check int) "crashed party never fires" 0 fired.(0);
        Alcotest.(check int) "live party unaffected" 1 fired.(1))
  ]

(* ---------------- behaviour parity and liveness ----------------------- *)

(* Golden digests of the PR 4 fault campaigns, captured on the revision
   before the link layer landed.  A link-off deployment must reproduce
   the seed behaviour bit for bit: same decisions, same virtual clocks,
   same chaos draws, same corrupted sets. *)
let golden_linkoff_digest =
  "736457053d7a3d1d327b008834113dfc76ed47524f4f3e7a3abf6d6b2d96cc8f"

let digest_campaign cfg =
  let rep = Campaign.run cfg in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (r : Campaign.run_result) ->
      Buffer.add_string buf
        (Printf.sprintf "%s|%s|%s|%d|%s|%d|%d|%d|%d|%d|%s\n"
           r.Campaign.r_protocol r.Campaign.r_policy r.Campaign.r_mix
           r.Campaign.r_seed
           (match r.Campaign.r_decide_clock with
           | None -> "-"
           | Some c -> Printf.sprintf "%.6f" c)
           (Oracle.count_safety r.Campaign.r_violations)
           (Oracle.count_liveness r.Campaign.r_violations)
           r.Campaign.r_chaos_drops r.Campaign.r_chaos_dups
           r.Campaign.r_chaos_reorders
           (String.concat ","
              (List.map string_of_int (Pset.to_list r.Campaign.r_corrupted)))))
    rep.Campaign.results;
  Sha256.hex (Buffer.contents buf)

let parity_tests =
  [ Alcotest.test_case
      "link off: 50-seed campaign is bit-identical to the pre-link stack"
      `Slow (fun () ->
        let digest =
          digest_campaign
            (Campaign.default_config ~seeds:50
               ~policies:
                 [ Campaign.drop_policy ();
                   Campaign.partition_policy ~n:4 () ]
               ~mixes:
                 [ { Campaign.m_name = "silent"; m_kind = Campaign.Silent };
                   { Campaign.m_name = "byzantine"; m_kind = Campaign.Byz } ]
               ())
        in
        Alcotest.(check string) "golden digest" golden_linkoff_digest digest)
  ]

let lossy_abc ~link ~seed =
  let keyring = Lazy.force kr41 in
  let obs = Obs.create () in
  let sim =
    Sim.create ~obs
      ~size:(Link.frame_size (Abc.msg_size keyring))
      ~n:4 ~seed ()
  in
  Sim.set_chaos sim
    (Some
       { Sim.benign_chaos with
         default_link = { Sim.no_fault with drop = 0.3 } });
  let logs = Array.make 4 [] in
  let nodes =
    Stack.deploy_abc ?link ~sim ~keyring ~tag:"lossy"
      ~deliver:(fun me p -> logs.(me) <- p :: logs.(me))
      ()
  in
  Abc.broadcast nodes.(0) "lossy-1";
  Abc.broadcast nodes.(2) "lossy-2";
  let done_ () = Array.for_all (fun l -> List.length l >= 2) logs in
  let completed =
    match Sim.run sim ~max_steps:300_000 ~until:done_ with
    | () -> done_ ()
    | exception Sim.Out_of_steps _ -> false
  in
  (completed, logs, obs)

let liveness_tests =
  [ Alcotest.test_case "30% loss, link on: abc delivers and retransmits"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let completed, logs, obs =
              lossy_abc ~link:(Some Link.default_policy) ~seed
            in
            Alcotest.(check bool)
              (Printf.sprintf "all parties delivered (seed %d)" seed)
              true completed;
            let l0 = List.rev logs.(0) in
            Array.iteri
              (fun i l ->
                Alcotest.(check (list string))
                  (Printf.sprintf "party %d total order (seed %d)" i seed)
                  l0 (List.rev l))
              logs;
            let snap = Obs.snapshot obs in
            Alcotest.(check bool) "link actually retransmitted" true
              (Option.value ~default:0
                 (R.counter_value snap ~labels:[ ("layer", "link") ]
                    "link_retransmit")
              > 0))
          [ 9001; 9002; 9003 ]);
    Alcotest.test_case "30% loss, link off: the same run stalls" `Quick
      (fun () ->
        (* the gating claim is meaningful only if bare channels really do
           lose liveness at this rate *)
        let stalled =
          List.exists
            (fun seed ->
              let completed, _, _ = lossy_abc ~link:None ~seed in
              not completed)
            [ 9001; 9002; 9003 ]
        in
        Alcotest.(check bool) "at least one bare run stalls" true stalled)
  ]

(* ---------------- gating campaign (acceptance sweep) ------------------ *)

let gating_tests =
  [ Alcotest.test_case
      "50-seed x 2-protocol sweep at 30% drop, link on: liveness gates and holds"
      `Slow (fun () ->
        let cfg =
          Campaign.default_config ~seeds:50
            ~policies:[ Campaign.drop_policy ~rate:0.3 () ]
            ~mixes:[ { Campaign.m_name = "silent"; m_kind = Campaign.Silent } ]
            ~link:Link.default_policy ()
        in
        let rep = Campaign.run cfg in
        Alcotest.(check int) "runs" 100 (List.length rep.Campaign.results);
        Alcotest.(check int) "no safety violations" 0
          (Campaign.safety_count rep);
        Alcotest.(check int) "no gating liveness violations" 0
          (Campaign.gating_liveness_count rep);
        List.iter
          (fun (r : Campaign.run_result) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s seed %d gates" r.Campaign.r_protocol
                 r.Campaign.r_mix r.Campaign.r_seed)
              true r.Campaign.r_reliable;
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s seed %d decided" r.Campaign.r_protocol
                 r.Campaign.r_mix r.Campaign.r_seed)
              true r.Campaign.r_decided)
          rep.Campaign.results;
        Alcotest.(check bool) "the link worked for a living" true
          (List.exists
             (fun (r : Campaign.run_result) -> r.Campaign.r_link_retransmits > 0)
             rep.Campaign.results);
        (* the report round-trips through the /2 schema with the link
           section, and the validator accepts it *)
        let json = Campaign.to_json ~id:"gating-test" ~wall:0.0 rep in
        (match Campaign.validate_json json with
        | Ok () -> ()
        | Error e -> Alcotest.failf "report validation failed: %s" e))
  ]

let suite =
  ( "link",
    unit_tests @ codec_tests @ timer_tests @ parity_tests @ liveness_tests
    @ gating_tests )
