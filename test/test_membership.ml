(* Rampart-lite tests: the dynamic-membership baseline works when
   timeouts are accurate (benign network, real crashes) and — the point
   of the paper's Figure 1 row — loses *safety* when the scheduling
   adversary shrinks the view until a corrupted server dominates it. *)

let deploy ~sim ?(timeout = 500.0) () =
  let n = Sim.n sim in
  let logs = Array.make n [] in
  let nodes =
    Array.init n (fun me ->
        Membership_abc.create ~me ~n
          ~send:(fun dst m -> Sim.send sim ~src:me ~dst m)
          ~broadcast:(fun m -> Sim.broadcast sim ~src:me m)
          ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
          ~deliver:(fun p -> logs.(me) <- p :: logs.(me))
          ~timeout ())
  in
  Array.iteri
    (fun me node ->
      Sim.set_handler sim me (fun ~src m -> Membership_abc.handle node ~src m))
    nodes;
  Array.iter Membership_abc.start nodes;
  (nodes, logs)

let tests =
  [ Alcotest.test_case "benign network: ordered delivery" `Quick (fun () ->
        let sim = Sim.create ~policy:Sim.Latency_order ~n:4 ~seed:1 () in
        let nodes, logs = deploy ~sim () in
        Membership_abc.submit nodes.(1) "m1";
        Membership_abc.submit nodes.(2) "m2";
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun l -> List.length l >= 2) logs);
        Array.iter
          (fun l ->
            Alcotest.(check (list string)) "same order" (List.rev logs.(0))
              (List.rev l))
          logs;
        Array.iter
          (fun node ->
            Alcotest.(check int) "view stable" 0
              (Membership_abc.current_view node))
          nodes);
    Alcotest.test_case "crashed member is evicted, service continues" `Quick
      (fun () ->
        let sim = Sim.create ~policy:Sim.Latency_order ~n:4 ~seed:2 () in
        let nodes, logs = deploy ~sim () in
        (* crash a non-sequencer member *)
        Sim.crash sim 2;
        Membership_abc.submit nodes.(1) "still-works";
        let honest = [ 0; 1; 3 ] in
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> logs.(i) <> []) honest);
        List.iter
          (fun i ->
            Alcotest.(check (list string)) "delivered" [ "still-works" ] logs.(i))
          honest);
    Alcotest.test_case "crashed sequencer is evicted, successor takes over"
      `Quick (fun () ->
        let sim = Sim.create ~policy:Sim.Latency_order ~n:4 ~seed:3 () in
        let nodes, logs = deploy ~sim () in
        Sim.crash sim 0;
        Membership_abc.submit nodes.(1) "after-failover";
        let honest = [ 1; 2; 3 ] in
        Sim.run sim
          ~until:(fun () -> List.for_all (fun i -> logs.(i) <> []) honest);
        List.iter
          (fun i ->
            Alcotest.(check (list string)) "delivered" [ "after-failover" ]
              logs.(i);
            Alcotest.(check bool) "membership shrank" true
              (Pset.card (Membership_abc.members nodes.(i)) < 4))
          honest);
    Alcotest.test_case
      "delay adversary shrinks the view until safety is violated" `Quick
      (fun () ->
        (* The Figure 1 claim for Rampart: the attacker delays honest
           servers "just long enough until corrupted servers hold the
           majority in the group".  Honest members 0 and 3 are delayed;
           the Byzantine member 1 backs every eviction with its own
           suspicion votes and, as sequencer, refuses to order new work,
           so the one remaining honest member keeps suspecting the
           silent victims.  The view shrinks to {1, 2}; the Byzantine
           sequencer then equivocates and honest member 2 delivers a
           payload that no other honest member will ever deliver at that
           position — a safety violation. *)
        let sim = Sim.create ~policy:(Sim.Delay_victims (Pset.of_list [ 0; 3 ])) ~n:4 ~seed:4 () in
        let nodes, logs = deploy ~sim ~timeout:300.0 () in
        let honest_handler = fun ~src m -> Membership_abc.handle nodes.(1) ~src m in
        let equivocations = ref 0 in
        let injected = ref (-1) in
        Sim.set_handler sim 1 (fun ~src m ->
            (* drop Submit relays: the Byzantine sequencer stalls ordering *)
            (match m with
            | Membership_abc.Submit _ -> ()
            | _ -> honest_handler ~src m);
            let self = nodes.(1) in
            let v = Membership_abc.current_view self in
            (* back the eviction of the delayed victims with its own votes *)
            if v > !injected then begin
              injected := v;
              List.iter
                (fun suspect ->
                  if Pset.mem suspect (Membership_abc.members self) then
                    Sim.broadcast sim ~src:1 (Membership_abc.Suspect (v, suspect)))
                [ 0; 3 ]
            end;
            (* the adversary tracks its victim's state (it controls the
               network): once honest member 2 is alone with the Byzantine
               sequencer, equivocate in 2's current view *)
            ignore self;
            let victim = nodes.(2) in
            if
              !equivocations < 10
              && Pset.card (Membership_abc.members victim) <= 2
              && (match Pset.to_list (Membership_abc.members victim) with
                 | s :: _ -> s = 1
                 | [] -> false)
            then begin
              incr equivocations;
              let v = Membership_abc.current_view victim in
              Sim.send sim ~src:1 ~dst:2 (Membership_abc.Order (v, 0, "evil-A"));
              Sim.send sim ~src:1 ~dst:2
                (Membership_abc.Ack (v, 0, Sha256.digest "evil-A"));
              Sim.send sim ~src:1 ~dst:0 (Membership_abc.Order (v, 0, "evil-B"));
              Sim.send sim ~src:1 ~dst:3 (Membership_abc.Order (v, 0, "evil-B"))
            end);
        Membership_abc.submit nodes.(2) "victim-payload";
        (try Sim.run sim ~max_steps:8_000 with Sim.Out_of_steps _ -> ());
        Alcotest.(check bool) "view shrank to <= 2 members" true
          (Pset.card (Membership_abc.members nodes.(2)) <= 2);
        Alcotest.(check bool) "equivocation was delivered" true
          (List.mem "evil-A" logs.(2));
        Alcotest.(check bool) "no other honest member has it" true
          (List.for_all (fun i -> not (List.mem "evil-A" logs.(i))) [ 0; 3 ]))
  ]

let suite = ("membership", tests)
