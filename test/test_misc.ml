(* Cross-cutting tests: the wire codec, the simulator itself, compressed
   quorum certificates end-to-end, weighted-threshold structures, and
   randomized-schedule property tests over whole protocol runs. *)

module AS = Adversary_structure

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ---------------- codec ---------------------------------------------- *)

let codec_tests =
  [ qtest "codec roundtrip" QCheck2.Gen.(list string) (fun parts ->
        Codec.decode (Codec.encode parts) = Some parts);
    qtest "codec rejects truncation"
      QCheck2.Gen.(list_size (int_range 1 5) (string_size (int_range 1 20)))
      (fun parts ->
        let enc = Codec.encode parts in
        (* dropping the last byte must never decode to the same list *)
        let cut = String.sub enc 0 (String.length enc - 1) in
        Codec.decode cut <> Some parts);
    Alcotest.test_case "codec rejects garbage" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Codec.decode "abc" = None);
        Alcotest.(check bool) "bad length" true
          (Codec.decode "\xff\xff\xff\xff\xff\xff\xff\xffrest" = None);
        Alcotest.(check (option (list string))) "empty ok" (Some [])
          (Codec.decode ""))
  ]

(* ---------------- simulator ------------------------------------------ *)

let sim_tests =
  [ Alcotest.test_case "same seed, same trace" `Quick (fun () ->
        let run () =
          let sim = Sim.create ~n:3 ~seed:99 () in
          let log = ref [] in
          for i = 0 to 2 do
            Sim.set_handler sim i (fun ~src m ->
                log := (i, src, m) :: !log;
                if m < 3 then Sim.broadcast sim ~src:i (m + 1))
          done;
          Sim.send sim ~src:0 ~dst:1 0;
          Sim.run sim;
          !log
        in
        Alcotest.(check bool) "deterministic" true (run () = run ()));
    Alcotest.test_case "crashed party receives nothing" `Quick (fun () ->
        let sim = Sim.create ~n:3 ~seed:1 () in
        let got = ref 0 in
        Sim.set_handler sim 2 (fun ~src:_ (_ : int) -> incr got);
        Sim.crash sim 2;
        Sim.send sim ~src:0 ~dst:2 42;
        Sim.run sim;
        Alcotest.(check int) "no delivery" 0 !got;
        Alcotest.(check int) "counted as drop" 1 (Sim.metrics sim).Metrics.drops);
    Alcotest.test_case "fifo preserves pairwise order" `Quick (fun () ->
        let sim = Sim.create ~policy:Sim.Fifo ~n:2 ~seed:1 () in
        let log = ref [] in
        Sim.set_handler sim 1 (fun ~src:_ m -> log := m :: !log);
        List.iter (fun m -> Sim.send sim ~src:0 ~dst:1 m) [ 1; 2; 3; 4 ];
        Sim.run sim;
        Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4 ] (List.rev !log));
    Alcotest.test_case "timers fire in deadline order" `Quick (fun () ->
        let sim : int Sim.t = Sim.create ~n:1 ~seed:1 () in
        let log = ref [] in
        Sim.set_timer sim 0 ~delay:300.0 (fun () -> log := 3 :: !log);
        Sim.set_timer sim 0 ~delay:100.0 (fun () -> log := 1 :: !log);
        Sim.set_timer sim 0 ~delay:200.0 (fun () -> log := 2 :: !log);
        Sim.run sim;
        Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] (List.rev !log));
    Alcotest.test_case "crashed party's timers do not fire" `Quick (fun () ->
        let sim : int Sim.t = Sim.create ~n:2 ~seed:1 () in
        let fired = ref false in
        Sim.set_timer sim 1 ~delay:50.0 (fun () -> fired := true);
        Sim.crash sim 1;
        Sim.run sim;
        Alcotest.(check bool) "suppressed" false !fired);
    Alcotest.test_case "delay_victims starves victims while traffic flows"
      `Quick (fun () ->
        let sim = Sim.create ~policy:(Sim.Delay_victims (Pset.singleton 0)) ~n:3 ~seed:5 () in
        let order = ref [] in
        for i = 0 to 2 do
          Sim.set_handler sim i (fun ~src:_ (m : int) -> order := (i, m) :: !order)
        done;
        Sim.send sim ~src:1 ~dst:0 100;  (* victim-bound *)
        for k = 1 to 5 do
          Sim.send sim ~src:1 ~dst:2 k
        done;
        Sim.run sim;
        (* the victim-bound message is delivered last *)
        (match !order with
        | (0, 100) :: _ -> ()
        | _ -> Alcotest.fail "victim traffic was not delayed to the end");
        Alcotest.(check int) "all delivered" 6 (List.length !order))
  ]

(* ---------------- compressed certificates end-to-end ------------------ *)

let compressed_tests =
  [ Alcotest.test_case "quorum certs: compressed mode round trip" `Quick
      (fun () ->
        let kr =
          Keyring.deal ~rsa_bits:192 ~cert_mode:Keyring.Compressed_mode
            ~seed:9001 (AS.threshold ~n:4 ~t:1)
        in
        let stmt = "compressed-statement" in
        let shares =
          List.map (fun p -> (p, Keyring.cert_share kr ~party:p stmt)) [ 0; 1; 2 ]
        in
        List.iter
          (fun (p, s) ->
            Alcotest.(check bool) "share ok" true
              (Keyring.verify_cert_share kr ~party:p stmt s))
          shares;
        (match Keyring.make_cert kr stmt shares with
        | None -> Alcotest.fail "cert not formed"
        | Some cert ->
          Alcotest.(check bool) "verifies" true (Keyring.verify_cert kr stmt cert);
          Alcotest.(check bool) "wrong statement fails" false
            (Keyring.verify_cert kr "other" cert);
          (* compressed certificates are constant-size RSA values *)
          Alcotest.(check bool) "small" true (Keyring.cert_size kr cert < 64));
        (* two shares are below the n-t quorum *)
        Alcotest.(check bool) "sub-quorum refused" true
          (Keyring.make_cert kr stmt (List.filteri (fun i _ -> i < 2) shares)
          = None));
    Alcotest.test_case "abc runs in compressed-certificate mode" `Quick
      (fun () ->
        let kr =
          Keyring.deal ~rsa_bits:192 ~cert_mode:Keyring.Compressed_mode
            ~seed:9002 (AS.threshold ~n:4 ~t:1)
        in
        let sim = Sim.create ~n:4 ~seed:77 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_abc ~sim ~keyring:kr ~tag:"compressed"
            ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
        in
        Abc.broadcast nodes.(0) "compact-1";
        Abc.broadcast nodes.(2) "compact-2";
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun l -> List.length l >= 2) logs);
        Array.iter
          (fun l ->
            Alcotest.(check (list string)) "same order" (List.rev logs.(0))
              (List.rev l))
          logs)
  ]

(* ---------------- weighted thresholds -------------------------------- *)

let weighted_tests =
  [ Alcotest.test_case "weighted threshold structure via logical parties"
      `Quick (fun () ->
        (* the paper: "traditional weighted thresholds ... can be obtained
           by allocating several logical parties to one physical party".
           Weights 2,1,1,1,1 with quorum 5 of 6: corruptible = weight <= 1. *)
        let f = Monotone_formula.weighted_threshold ~weights:[ 2; 1; 1; 1; 1 ] ~k:2 in
        let s = AS.of_access_formula ~n:5 f in
        (* any single light party is corruptible; the heavy party alone is
           qualified *)
        Alcotest.(check bool) "heavy alone qualified" true
          (AS.is_qualified s (Pset.singleton 0));
        Alcotest.(check bool) "light alone corruptible" true
          (AS.is_corruptible s (Pset.singleton 3));
        Alcotest.(check bool) "two lights qualified" true
          (AS.is_qualified s (Pset.of_list [ 1; 2 ]));
        (* LSSS over the weighted formula *)
        let q = Bignum.of_string "170141183460469231731687303715884105727" in
        let scheme = Lsss.build ~modulus:q f in
        let rng = Prng.create ~seed:3 in
        let shares = Lsss.share scheme rng ~secret:(Bignum.of_int 777) in
        (match Lsss.reconstruct scheme shares (Pset.singleton 0) with
        | Some v -> Alcotest.(check bool) "heavy recovers" true (Bignum.to_int_opt v = Some 777)
        | None -> Alcotest.fail "heavy party must reconstruct");
        Alcotest.(check bool) "light cannot" true
          (Lsss.reconstruct scheme shares (Pset.singleton 4) = None))
  ]

(* ---------------- protocol property tests ----------------------------- *)

let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 (AS.threshold ~n:4 ~t:1))
let misc_keyrings : (string, Keyring.t) Hashtbl.t = Hashtbl.create 2

let property_tests =
  [ qtest ~count:12 "abc total order holds for random seeds and crashes"
      QCheck2.Gen.(pair int (int_bound 4))
      (fun (seed, crash_choice) ->
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_abc ~sim ~keyring:kr ~tag:(Printf.sprintf "prop-%d" seed)
            ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
        in
        let crashed = if crash_choice < 4 then Some crash_choice else None in
        (match crashed with Some c -> Sim.crash sim c | None -> ());
        let honest =
          List.filter (fun i -> Some i <> crashed) (List.init 4 Fun.id)
        in
        List.iteri
          (fun k p -> Abc.broadcast nodes.(List.nth honest (k mod 3)) p)
          [ "pa"; "pb"; "pc" ];
        (try
           Sim.run sim ~max_steps:600_000
             ~until:(fun () ->
               List.for_all (fun i -> List.length logs.(i) >= 3) honest)
         with Sim.Out_of_steps _ -> ());
        let ok_delivery =
          List.for_all (fun i -> List.length logs.(i) = 3) honest
        in
        let ok_order =
          List.for_all
            (fun i -> List.rev logs.(i) = List.rev logs.(List.hd honest))
            honest
        in
        ok_delivery && ok_order);
    qtest ~count:4 "abba agrees over example1 under random seeds"
      QCheck2.Gen.int
      (fun seed ->
        let s1 = Canonical_structures.example1 () in
        let kr =
          match Hashtbl.find_opt misc_keyrings "ex1" with
          | Some kr -> kr
          | None ->
            let kr = Keyring.deal ~rsa_bits:192 ~seed:2001 s1 in
            Hashtbl.add misc_keyrings "ex1" kr;
            kr
        in
        let sim = Sim.create ~n:9 ~seed () in
        let decisions = Array.make 9 None in
        let nodes =
          Stack.deploy_abba ~sim ~keyring:kr
            ~tag:(Printf.sprintf "mx-%d" seed)
            ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
        in
        (* crash one whole class (a corruptible set) at random *)
        let classes = Canonical_structures.example1_classes in
        let victim = List.nth classes (abs seed mod List.length classes) in
        List.iter (Sim.crash sim) victim;
        Array.iteri
          (fun i node ->
            if not (List.mem i victim) then Abba.propose node (i mod 2 = 0))
          nodes;
        (try Sim.run sim ~max_steps:600_000 with Sim.Out_of_steps _ -> ());
        let honest = List.filter (fun i -> not (List.mem i victim)) (List.init 9 Fun.id) in
        let ds = List.filter_map (fun i -> decisions.(i)) honest in
        List.length ds = List.length honest
        && (match ds with d :: r -> List.for_all (( = ) d) r | [] -> false));
    qtest ~count:10 "coin is consistent under random share subsets"
      QCheck2.Gen.(pair (string_size (int_range 1 12)) (int_bound 1000))
      (fun (name, salt) ->
        let kr = Lazy.force kr41 in
        let coin = kr.Keyring.coin in
        let name = name ^ string_of_int salt in
        let shares =
          List.init 4 (fun i -> (i, Coin.generate_share coin ~party:i ~name))
        in
        let v at =
          Coin.combine coin ~name ~avail:(Pset.of_list at)
            (List.filter (fun (i, _) -> List.mem i at) shares)
            ()
        in
        v [ 0; 1 ] = v [ 2; 3 ] && v [ 0; 3 ] = v [ 1; 2 ] && v [ 0; 1 ] <> None)
  ]

let suite =
  ( "misc",
    codec_tests @ sim_tests @ compressed_tests @ weighted_tests
    @ property_tests )
