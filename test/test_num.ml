(* Tests for the bignum substrate: cross-checks against native ints,
   algebraic laws as qcheck properties, and primality known answers. *)

module B = Bignum

let b = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check b

(* Generator: random Bignum with up to [bits] bits, signed. *)
let gen_bignum ?(bits = 200) () =
  QCheck2.Gen.(
    let* nb = int_range 0 bits in
    let* neg = bool in
    let* s = string_size ~gen:char (return ((nb + 7) / 8)) in
    let v = B.shift_right (B.of_bytes_be s) (max 0 ((8 * String.length s) - nb)) in
    return (if neg then B.neg v else v))

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let small_int_pairs =
  QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))

let unit_tests =
  [ Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun x ->
            Alcotest.(check (option int)) "roundtrip" (Some x) (B.to_int_opt (B.of_int x)))
          [ 0; 1; -1; 42; -42; max_int / 4; -(max_int / 4); 1 lsl 40 ]);
    Alcotest.test_case "string roundtrip" `Quick (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
          [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-99999999999999999999" ]);
    Alcotest.test_case "hex roundtrip" `Quick (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (B.to_hex (B.of_hex s)))
          [ "1"; "deadbeef"; "123456789abcdef0123456789abcdef" ]);
    Alcotest.test_case "known multiplication" `Quick (fun () ->
        let a = B.of_string "123456789123456789123456789" in
        let bb = B.of_string "987654321987654321987654321" in
        check_b "product"
          (B.of_string "121932631356500531591068431581771069347203169112635269")
          (B.mul a bb));
    Alcotest.test_case "known division" `Quick (fun () ->
        let a = B.of_string "121932631356500531591068431581771069347203169112635269" in
        let bb = B.of_string "987654321987654321987654321" in
        let q, r = B.divmod a bb in
        check_b "quotient" (B.of_string "123456789123456789123456789") q;
        check_b "remainder" B.zero r);
    Alcotest.test_case "pow_mod known" `Quick (fun () ->
        (* 2^10 mod 1000 = 24 *)
        check_b "2^10 mod 1000" (B.of_int 24)
          (B.pow_mod ~base:B.two ~exp:(B.of_int 10) ~modulus:(B.of_int 1000));
        (* Fermat: 2^(p-1) = 1 mod p for prime p *)
        let p = B.of_string "1000000007" in
        check_b "fermat" B.one
          (B.pow_mod ~base:B.two ~exp:(B.pred p) ~modulus:p));
    Alcotest.test_case "inv_mod" `Quick (fun () ->
        let p = B.of_string "1000000007" in
        (match B.inv_mod (B.of_int 12345) p with
        | None -> Alcotest.fail "expected inverse"
        | Some i -> check_b "inv" B.one (B.mul_mod i (B.of_int 12345) p));
        Alcotest.(check bool)
          "no inverse" true
          (B.inv_mod (B.of_int 6) (B.of_int 12) = None));
    Alcotest.test_case "shift identities" `Quick (fun () ->
        let v = B.of_string "123456789123456789123456789123456789" in
        check_b "left-right" v (B.shift_right (B.shift_left v 100) 100);
        check_b "shift = mul pow2" (B.shift_left v 65)
          (B.mul v (B.pow_mod ~base:B.two ~exp:(B.of_int 65)
                      ~modulus:(B.shift_left B.one 200))));
    Alcotest.test_case "numbits" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (B.numbits B.zero);
        Alcotest.(check int) "1" 1 (B.numbits B.one);
        Alcotest.(check int) "255" 8 (B.numbits (B.of_int 255));
        Alcotest.(check int) "256" 9 (B.numbits (B.of_int 256));
        Alcotest.(check int) "2^100" 101 (B.numbits (B.shift_left B.one 100)));
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let v = B.of_string "123456789123456789123456789" in
        check_b "be" v (B.of_bytes_be (B.to_bytes_be v));
        let padded = B.to_bytes_be ~len:32 v in
        Alcotest.(check int) "padded length" 32 (String.length padded);
        check_b "padded value" v (B.of_bytes_be padded));
    Alcotest.test_case "egcd bezout" `Quick (fun () ->
        let a = B.of_string "123456789123456789" in
        let bb = B.of_string "987654321987654" in
        let g, u, v = B.egcd a bb in
        check_b "bezout" g (B.add (B.mul u a) (B.mul v bb)));
    Alcotest.test_case "known primes" `Quick (fun () ->
        let rng = Prng.create ~seed:1 in
        List.iter
          (fun s ->
            Alcotest.(check bool) ("prime " ^ s) true
              (Primes.is_probable_prime rng (B.of_string s)))
          [ "2"; "3"; "65537"; "1000000007"; "2305843009213693951";
            (* 2^127-1, Mersenne prime *)
            "170141183460469231731687303715884105727" ]);
    Alcotest.test_case "known composites" `Quick (fun () ->
        let rng = Prng.create ~seed:2 in
        List.iter
          (fun s ->
            Alcotest.(check bool) ("composite " ^ s) false
              (Primes.is_probable_prime rng (B.of_string s)))
          [ "1"; "561" (* Carmichael *); "1000000008"; "25326001" (* strong pseudoprime to 2,3,5 *);
            "340282366920938463463374607431768211457" (* 2^128+1 *) ]);
    Alcotest.test_case "random prime has requested size" `Quick (fun () ->
        let rng = Prng.create ~seed:3 in
        let p = Primes.random_prime rng ~bits:96 in
        Alcotest.(check int) "bits" 96 (B.numbits p);
        Alcotest.(check bool) "prime" true (Primes.is_probable_prime rng p));
    Alcotest.test_case "safe prime" `Quick (fun () ->
        let rng = Prng.create ~seed:4 in
        let p, q = Primes.random_safe_prime rng ~bits:64 in
        check_b "p = 2q+1" p (B.succ (B.shift_left q 1));
        Alcotest.(check bool) "p prime" true (Primes.is_probable_prime rng p);
        Alcotest.(check bool) "q prime" true (Primes.is_probable_prime rng q));
    Alcotest.test_case "prng determinism" `Quick (fun () ->
        let r1 = Prng.create ~seed:99 and r2 = Prng.create ~seed:99 in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Prng.int r1 1000) (Prng.int r2 1000)
        done);
    Alcotest.test_case "prng bounds" `Quick (fun () ->
        let r = Prng.create ~seed:7 in
        for _ = 1 to 1000 do
          let v = Prng.int r 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done)
  ]

let prop_tests =
  [ qtest "int cross-check add/sub/mul" small_int_pairs (fun (x, y) ->
        let bx = B.of_int x and by = B.of_int y in
        B.to_int_opt (B.add bx by) = Some (x + y)
        && B.to_int_opt (B.sub bx by) = Some (x - y)
        && B.to_int_opt (B.mul bx by) = Some (x * y));
    qtest "int cross-check divmod" small_int_pairs (fun (x, y) ->
        QCheck2.assume (y <> 0);
        let q, r = B.divmod (B.of_int x) (B.of_int y) in
        B.to_int_opt q = Some (x / y) && B.to_int_opt r = Some (x mod y));
    qtest "add commutative" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) -> B.equal (B.add x y) (B.add y x));
    qtest "mul commutative" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) -> B.equal (B.mul x y) (B.mul y x));
    qtest "mul distributes"
      (QCheck2.Gen.triple (gen_bignum ()) (gen_bignum ()) (gen_bignum ()))
      (fun (x, y, z) ->
        B.equal (B.mul x (B.add y z)) (B.add (B.mul x y) (B.mul x z)));
    qtest "add associates"
      (QCheck2.Gen.triple (gen_bignum ()) (gen_bignum ()) (gen_bignum ()))
      (fun (x, y, z) -> B.equal (B.add (B.add x y) z) (B.add x (B.add y z)));
    qtest "sub inverse of add" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) -> B.equal x (B.sub (B.add x y) y));
    qtest "divmod invariant"
      (QCheck2.Gen.pair (gen_bignum ~bits:300 ()) (gen_bignum ~bits:150 ()))
      (fun (a, d) ->
        QCheck2.assume (not (B.is_zero d));
        let q, r = B.divmod a d in
        B.equal a (B.add (B.mul q d) r)
        && B.compare (B.abs r) (B.abs d) < 0
        && (B.is_zero r || B.sign r = B.sign a));
    qtest "erem in range"
      (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ~bits:100 ()))
      (fun (a, d) ->
        QCheck2.assume (not (B.is_zero d));
        let r = B.erem a d in
        B.sign r >= 0 && B.compare r (B.abs d) < 0);
    qtest "string roundtrip" (gen_bignum ~bits:400 ()) (fun v ->
        B.equal v (B.of_string (B.to_string v)));
    qtest "hex roundtrip" (gen_bignum ~bits:400 ()) (fun v ->
        B.equal v (B.of_hex (B.to_hex v)));
    qtest "compare antisymmetric" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) -> B.compare x y = -B.compare y x);
    qtest "gcd divides" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) ->
        QCheck2.assume (not (B.is_zero x) || not (B.is_zero y));
        let g = B.gcd x y in
        B.is_zero (B.rem x g) && B.is_zero (B.rem y g));
    qtest "egcd bezout" (QCheck2.Gen.pair (gen_bignum ()) (gen_bignum ()))
      (fun (x, y) ->
        let g, u, v = B.egcd x y in
        B.equal g (B.add (B.mul u x) (B.mul v y)));
    qtest ~count:50 "pow_mod multiplicative"
      (QCheck2.Gen.triple (gen_bignum ~bits:80 ()) (QCheck2.Gen.int_range 0 50)
         (QCheck2.Gen.int_range 0 50))
      (fun (x, e1, e2) ->
        let m = B.of_string "170141183460469231731687303715884105727" in
        let x = B.abs x in
        B.equal
          (B.pow_mod ~base:x ~exp:(B.of_int (e1 + e2)) ~modulus:m)
          (B.mul_mod
             (B.pow_mod ~base:x ~exp:(B.of_int e1) ~modulus:m)
             (B.pow_mod ~base:x ~exp:(B.of_int e2) ~modulus:m)
             m));
    qtest ~count:50 "inv_mod correct"
      (gen_bignum ~bits:120 ())
      (fun x ->
        let p = B.of_string "170141183460469231731687303715884105727" in
        let x = B.erem (B.abs x) p in
        QCheck2.assume (not (B.is_zero x));
        match B.inv_mod x p with
        | None -> false
        | Some i -> B.equal B.one (B.mul_mod i x p));
    qtest "shift roundtrip"
      (QCheck2.Gen.pair (gen_bignum ()) (QCheck2.Gen.int_range 0 200))
      (fun (v, k) -> B.equal v (B.shift_right (B.shift_left v k) k));
    qtest ~count:60 "pow_mod (Barrett) agrees with naive modular squaring"
      (QCheck2.Gen.triple (gen_bignum ~bits:260 ()) (gen_bignum ~bits:200 ())
         (gen_bignum ~bits:260 ()))
      (fun (base, e, m) ->
        let m = B.abs m and e = B.abs e and base = B.abs base in
        QCheck2.assume (B.compare m B.two > 0);
        (* naive square-and-multiply with plain erem at each step *)
        let naive =
          let b = ref (B.erem base m) and r = ref B.one in
          let nb = B.numbits e in
          for i = 0 to nb - 1 do
            if B.testbit e i then r := B.erem (B.mul !r !b) m;
            if i < nb - 1 then b := B.erem (B.mul !b !b) m
          done;
          !r
        in
        B.equal naive (B.pow_mod ~base ~exp:e ~modulus:m));
    qtest "bytes roundtrip" (gen_bignum ~bits:300 ()) (fun v ->
        let v = B.abs v in
        B.equal v (B.of_bytes_be (B.to_bytes_be v)))
  ]

(* Reference ladder for the fast-path cross-checks below: plain
   square-and-multiply with a full reduction at every step. *)
let naive_pow_mod ~base ~exp ~modulus =
  let b = ref (B.erem base modulus) and r = ref B.one in
  let nb = B.numbits exp in
  for i = 0 to nb - 1 do
    if B.testbit exp i then r := B.erem (B.mul !r !b) modulus;
    if i < nb - 1 then b := B.erem (B.mul !b !b) modulus
  done;
  if B.equal modulus B.one then B.zero else !r

let fastpath_tests =
  [ Alcotest.test_case "pow_mod edge cases" `Quick (fun () ->
        let m = B.of_string "170141183460469231731687303715884105727" in
        (* modulus 1 short-circuits to 0, whatever the base/exponent *)
        check_b "mod 1" B.zero
          (B.pow_mod ~base:(B.of_int 7) ~exp:(B.of_int 5) ~modulus:B.one);
        (* 0^0 = 1 by convention; 0^e = 0 for e > 0 *)
        check_b "0^0" B.one (B.pow_mod ~base:B.zero ~exp:B.zero ~modulus:m);
        check_b "0^e" B.zero
          (B.pow_mod ~base:B.zero ~exp:(B.of_int 3) ~modulus:m);
        (* base >= modulus and negative bases reduce first *)
        check_b "base >= m" (B.pow_mod ~base:B.two ~exp:(B.of_int 10) ~modulus:m)
          (B.pow_mod ~base:(B.add m B.two) ~exp:(B.of_int 10) ~modulus:m);
        check_b "negative base"
          (B.pow_mod ~base:(B.sub m B.two) ~exp:(B.of_int 3) ~modulus:m)
          (B.pow_mod ~base:(B.neg B.two) ~exp:(B.of_int 3) ~modulus:m);
        (* negative exponents and non-positive moduli are rejected *)
        Alcotest.check_raises "negative exponent"
          (Invalid_argument "Bignum.pow_mod: negative exponent") (fun () ->
            ignore (B.pow_mod ~base:B.two ~exp:(B.neg B.one) ~modulus:m));
        Alcotest.check_raises "zero modulus"
          (Invalid_argument "Bignum.pow_mod: modulus must be positive")
          (fun () ->
            ignore (B.pow_mod ~base:B.two ~exp:B.one ~modulus:B.zero)));
    qtest ~count:40 "Montgomery-window pow_mod agrees with naive ladder (odd m)"
      (QCheck2.Gen.triple (gen_bignum ~bits:560 ()) (gen_bignum ~bits:520 ())
         (gen_bignum ~bits:520 ()))
      (fun (base, e, m) ->
        let base = B.abs base and e = B.abs e in
        (* force the modulus odd and large: the Montgomery window path *)
        let m = B.succ (B.shift_left (B.abs m) 1) in
        QCheck2.assume (B.compare m B.two > 0);
        B.equal (naive_pow_mod ~base ~exp:e ~modulus:m)
          (B.pow_mod ~base ~exp:e ~modulus:m));
    qtest ~count:40 "pow_mod even-modulus fallback agrees with naive ladder"
      (QCheck2.Gen.triple (gen_bignum ~bits:300 ()) (gen_bignum ~bits:260 ())
         (gen_bignum ~bits:260 ()))
      (fun (base, e, m) ->
        let base = B.abs base and e = B.abs e in
        (* force the modulus even: the Barrett/plain fallback *)
        let m = B.shift_left (B.abs m) 1 in
        QCheck2.assume (B.compare m B.two > 0);
        B.equal (naive_pow_mod ~base ~exp:e ~modulus:m)
          (B.pow_mod ~base ~exp:e ~modulus:m));
    qtest ~count:40 "pow2_mod = product of pow_mods"
      (QCheck2.Gen.triple
         (QCheck2.Gen.pair (gen_bignum ~bits:300 ()) (gen_bignum ~bits:260 ()))
         (QCheck2.Gen.pair (gen_bignum ~bits:300 ()) (gen_bignum ~bits:260 ()))
         (gen_bignum ~bits:260 ()))
      (fun ((b1, e1), (b2, e2), m) ->
        let b1 = B.abs b1 and e1 = B.abs e1 in
        let b2 = B.abs b2 and e2 = B.abs e2 in
        let m = B.abs m in
        QCheck2.assume (B.compare m B.two > 0);
        B.equal
          (B.pow2_mod ~b1 ~e1 ~b2 ~e2 ~modulus:m)
          (B.mul_mod
             (B.pow_mod ~base:b1 ~exp:e1 ~modulus:m)
             (B.pow_mod ~base:b2 ~exp:e2 ~modulus:m)
             m));
    qtest ~count:40 "pow_multi_mod = folded product of pow_mods"
      (QCheck2.Gen.pair
         (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 5)
            (QCheck2.Gen.pair (gen_bignum ~bits:200 ())
               (gen_bignum ~bits:160 ())))
         (gen_bignum ~bits:200 ()))
      (fun (pairs, m) ->
        let pairs = List.map (fun (b, e) -> (B.abs b, B.abs e)) pairs in
        let m = B.abs m in
        QCheck2.assume (B.compare m B.two > 0);
        B.equal
          (B.pow_multi_mod pairs ~modulus:m)
          (List.fold_left
             (fun acc (b, e) ->
               B.mul_mod acc (B.pow_mod ~base:b ~exp:e ~modulus:m) m)
             B.one pairs))
  ]

let suite = ("num", unit_tests @ prop_tests @ fastpath_tests)
