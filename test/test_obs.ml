(* Observability library: histogram bucket algebra, registry
   snapshot/diff, span tracing against the simulator's virtual clock,
   JSONL round-trips, per-layer protocol attribution and the global
   crypto counters. *)

module AS = Adversary_structure
module H = Obs_histogram
module R = Obs_registry

(* ---------------- json ----------------------------------------------- *)

let json_tests =
  [ Alcotest.test_case "to_string/of_string round-trip" `Quick (fun () ->
        let doc =
          Obs_json.Obj
            [ ("a", Obs_json.Int 42);
              ("b", Obs_json.Float 0.1);
              ("c", Obs_json.Str "x\"y\n\\z");
              ("d", Obs_json.Arr [ Obs_json.Null; Obs_json.Bool true ]);
              ("e", Obs_json.Obj []) ]
        in
        let s = Obs_json.to_string doc in
        (match Obs_json.of_string s with
        | Ok doc' ->
          Alcotest.(check string) "stable" s (Obs_json.to_string doc')
        | Error e -> Alcotest.failf "parse error: %s" e));
    Alcotest.test_case "rejects trailing garbage" `Quick (fun () ->
        Alcotest.(check bool) "garbage" true
          (Result.is_error (Obs_json.of_string "{\"a\":1} extra")));
    Alcotest.test_case "canonical ordering sorts fields recursively" `Quick
      (fun () ->
        let doc =
          Obs_json.Obj
            [ ("b", Obs_json.Int 1);
              ( "a",
                Obs_json.Obj
                  [ ("d", Obs_json.Bool false); ("c", Obs_json.Null) ] );
              ( "arr",
                Obs_json.Arr
                  [ Obs_json.Obj
                      [ ("z", Obs_json.Int 2); ("y", Obs_json.Int 3) ] ] ) ]
        in
        Alcotest.(check string)
          "sorted, array order preserved"
          "{\"a\":{\"c\":null,\"d\":false},\"arr\":[{\"y\":3,\"z\":2}],\"b\":1}"
          (Obs_json.to_canonical_string doc);
        (* already-canonical input is a fixed point *)
        let c = Obs_json.sort_fields doc in
        Alcotest.(check string) "idempotent"
          (Obs_json.to_canonical_string doc)
          (Obs_json.to_canonical_string c));
    Alcotest.test_case "canonical ordering is shuffle-invariant" `Quick
      (fun () ->
        let a =
          Obs_json.Obj
            [ ("x", Obs_json.Int 1); ("y", Obs_json.Str "s");
              ("z", Obs_json.Float 2.5) ]
        and b =
          Obs_json.Obj
            [ ("z", Obs_json.Float 2.5); ("x", Obs_json.Int 1);
              ("y", Obs_json.Str "s") ]
        in
        Alcotest.(check string) "same bytes"
          (Obs_json.to_canonical_string a)
          (Obs_json.to_canonical_string b))
  ]

(* ---------------- histogram ------------------------------------------ *)

let histogram_tests =
  [ Alcotest.test_case "bucket boundaries at powers of two" `Quick (fun () ->
        (* bucket 0 is (-inf, 1); bucket i >= 1 is [2^(i-1), 2^i) *)
        Alcotest.(check int) "0.25" 0 (H.bucket_index 0.25);
        Alcotest.(check int) "0.999" 0 (H.bucket_index 0.999);
        Alcotest.(check int) "1.0" 1 (H.bucket_index 1.0);
        Alcotest.(check int) "1.999" 1 (H.bucket_index 1.999);
        Alcotest.(check int) "2.0" 2 (H.bucket_index 2.0);
        Alcotest.(check int) "1024" 11 (H.bucket_index 1024.0);
        Alcotest.(check int) "huge clamps" (H.n_buckets - 1)
          (H.bucket_index 1e300);
        for i = 1 to H.n_buckets - 2 do
          let lo = H.bucket_lower i in
          Alcotest.(check int) "lower edge inclusive" i (H.bucket_index lo);
          Alcotest.(check int) "upper edge excluded" (i + 1)
            (H.bucket_index (H.bucket_upper i))
        done);
    Alcotest.test_case "observe/count/sum/percentile" `Quick (fun () ->
        let h = H.create () in
        List.iter (H.observe h) [ 1.0; 3.0; 5.0; 200.0 ];
        Alcotest.(check int) "count" 4 (H.count h);
        Alcotest.(check (float 1e-9)) "sum" 209.0 (H.sum h);
        Alcotest.(check (option (float 1e-9))) "min" (Some 1.0) (H.min_value h);
        Alcotest.(check (option (float 1e-9))) "max" (Some 200.0)
          (H.max_value h);
        (* p50 lands in the bucket of 3.0 ([2,4)), reported as its upper
           bound *)
        Alcotest.(check (option (float 1e-9))) "p50" (Some 4.0)
          (H.percentile h 50.0));
    Alcotest.test_case "diff is interval subtraction" `Quick (fun () ->
        let older = H.create () in
        List.iter (H.observe older) [ 1.0; 8.0 ];
        let newer = H.copy older in
        List.iter (H.observe newer) [ 8.5; 100.0 ];
        let d = H.diff newer older in
        Alcotest.(check int) "count" 2 (H.count d);
        Alcotest.(check (float 1e-9)) "sum" 108.5 (H.sum d);
        Alcotest.(check int) "bucket of 8.5" 1 (H.bucket d (H.bucket_index 8.5)));
    Alcotest.test_case "merge adds" `Quick (fun () ->
        let a = H.create () and b = H.create () in
        H.observe a 2.0;
        H.observe b 4.0;
        let m = H.merge a b in
        Alcotest.(check int) "count" 2 (H.count m);
        Alcotest.(check (float 1e-9)) "sum" 6.0 (H.sum m));
    Alcotest.test_case "percentile of empty histogram is None" `Quick
      (fun () ->
        let h = H.create () in
        Alcotest.(check (option (float 1e-9))) "p50" None (H.percentile h 50.0);
        Alcotest.(check (option (float 1e-9))) "p100" None
          (H.percentile h 100.0));
    Alcotest.test_case "percentile of a single observation is exact" `Quick
      (fun () ->
        let h = H.create () in
        H.observe h 7.0;
        (* 7.0 lands in [4, 8); the bucket upper bound clamps to vmax *)
        List.iter
          (fun p ->
            Alcotest.(check (option (float 1e-9)))
              (Printf.sprintf "p%.0f" p)
              (Some 7.0) (H.percentile h p))
          [ 1.0; 50.0; 95.0; 100.0 ]);
    Alcotest.test_case "percentile of all-equal observations is exact" `Quick
      (fun () ->
        let h = H.create () in
        for _ = 1 to 5 do H.observe h 42.0 done;
        List.iter
          (fun p ->
            Alcotest.(check (option (float 1e-9)))
              (Printf.sprintf "p%.0f" p)
              (Some 42.0) (H.percentile h p))
          [ 1.0; 50.0; 99.0; 100.0 ]);
    Alcotest.test_case "percentile clamps below-1.0 bucket to vmax" `Quick
      (fun () ->
        (* bucket 0 collects everything below 1.0 (including negatives);
           its nominal upper bound 1.0 must clamp to the observed max *)
        let h = H.create () in
        List.iter (H.observe h) [ -3.0; -1.0; 0.25 ];
        Alcotest.(check (option (float 1e-9))) "p50" (Some 0.25)
          (H.percentile h 50.0);
        Alcotest.(check (option (float 1e-9))) "p100" (Some 0.25)
          (H.percentile h 100.0));
    Alcotest.test_case "percentile hits the unbounded top bucket" `Quick
      (fun () ->
        let h = H.create () in
        H.observe h 1.0;
        H.observe h 1e300;  (* clamps into the last bucket *)
        Alcotest.(check (option (float 1e-9))) "p100 = vmax" (Some 1e300)
          (H.percentile h 100.0))
  ]

(* ---------------- registry ------------------------------------------- *)

let registry_tests =
  [ Alcotest.test_case "labels are canonicalized" `Quick (fun () ->
        let r = R.create () in
        let c1 = R.counter r ~labels:[ ("a", "1"); ("b", "2") ] "m" in
        let c2 = R.counter r ~labels:[ ("b", "2"); ("a", "1") ] "m" in
        R.incr c1;
        Alcotest.(check int) "same handle" 1 (R.value c2));
    Alcotest.test_case "kind mismatch rejected" `Quick (fun () ->
        let r = R.create () in
        ignore (R.counter r "x");
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument "Obs_registry: x already registered as a counter")
          (fun () -> ignore (R.gauge r "x")));
    Alcotest.test_case "snapshot/diff algebra" `Quick (fun () ->
        let r = R.create () in
        let c = R.counter r ~labels:[ ("layer", "rbc") ] "messages" in
        let g = R.gauge r "level" in
        R.incr ~by:5 c;
        R.set g 1.0;
        R.observe r "lat" 10.0;
        let s0 = R.snapshot r in
        R.incr ~by:3 c;
        R.set g 7.5;
        R.observe r "lat" 20.0;
        let s1 = R.snapshot r in
        let d = R.diff s1 s0 in
        Alcotest.(check (option int)) "counter interval" (Some 3)
          (R.counter_value d ~labels:[ ("layer", "rbc") ] "messages");
        (match R.find d "level" with
        | Some (R.Vgauge v) -> Alcotest.(check (float 1e-9)) "gauge newer" 7.5 v
        | _ -> Alcotest.fail "gauge missing from diff");
        (match R.find d "lat" with
        | Some (R.Vhistogram h) ->
          Alcotest.(check int) "histogram interval count" 1 (H.count h);
          Alcotest.(check (float 1e-9)) "histogram interval sum" 20.0 (H.sum h)
        | _ -> Alcotest.fail "histogram missing from diff");
        (* an idle interval drops its zero counters *)
        let d0 = R.diff s1 s1 in
        Alcotest.(check (option int)) "zero counters dropped" None
          (R.counter_value d0 ~labels:[ ("layer", "rbc") ] "messages"));
    Alcotest.test_case "snapshot isolates histograms" `Quick (fun () ->
        let r = R.create () in
        R.observe r "h" 1.0;
        let s = R.snapshot r in
        R.observe r "h" 2.0;
        match R.find s "h" with
        | Some (R.Vhistogram h) -> Alcotest.(check int) "copied" 1 (H.count h)
        | _ -> Alcotest.fail "histogram missing")
  ]

(* ---------------- tracer --------------------------------------------- *)

let trace_tests =
  [ Alcotest.test_case "jsonl golden round-trip" `Quick (fun () ->
        let clock = ref 0.0 in
        let tr = Obs_trace.create ~now:(fun () -> !clock) () in
        let s1 = Obs_trace.span_begin tr ~party:0 ~tag:"t" ~layer:"rbc" "echo" in
        clock := 1.5;
        let s2 = Obs_trace.span_begin tr ~party:0 ~layer:"rbc" "ready" in
        clock := 2.0;
        Obs_trace.point tr ~party:1 ~src:0 ~layer:"rbc" "deliver";
        Obs_trace.span_end tr ~detail:"done" s2;
        clock := 4.25;
        Obs_trace.span_end tr s1;
        let jsonl = Obs_trace.to_jsonl tr in
        (match Obs_trace.of_jsonl jsonl with
        | Error e -> Alcotest.failf "of_jsonl: %s" e
        | Ok records ->
          Alcotest.(check int) "record count" 3 (List.length records);
          let reserialized =
            String.concat ""
              (List.map
                 (fun r ->
                   Obs_json.to_string (Obs_trace.record_to_json r) ^ "\n")
                 records)
          in
          Alcotest.(check string) "byte-stable" jsonl reserialized);
        let st = Obs_trace.stats tr in
        Alcotest.(check int) "started" 2 st.Obs_trace.spans_started;
        Alcotest.(check int) "ended" 2 st.Obs_trace.spans_ended;
        Alcotest.(check int) "points" 1 st.Obs_trace.points_recorded);
    Alcotest.test_case "ring drops oldest and counts" `Quick (fun () ->
        let clock = ref 0.0 in
        let tr = Obs_trace.create ~capacity:4 ~now:(fun () -> !clock) () in
        for i = 1 to 10 do
          clock := float_of_int i;
          Obs_trace.point tr ~layer:"x" (Printf.sprintf "p%d" i)
        done;
        let records = Obs_trace.records tr in
        Alcotest.(check int) "capacity" 4 (List.length records);
        Alcotest.(check int) "dropped" 6
          (Obs_trace.stats tr).Obs_trace.records_dropped;
        match records with
        | r :: _ -> Alcotest.(check string) "oldest kept" "p7" r.Obs_trace.name
        | [] -> Alcotest.fail "empty ring");
    Alcotest.test_case "span id 0 is inert" `Quick (fun () ->
        let o = Obs.noop in
        Alcotest.(check int) "noop span" 0
          (Obs.span_begin o ~layer:"rbc" "echo");
        Obs.span_end o 0 (* must not raise *));
    Alcotest.test_case "rbc spans balance under Sim.run" `Quick (fun () ->
        let structure = AS.threshold ~n:4 ~t:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:21 structure in
        let obs = Obs.create () in
        let sim =
          Sim.create ~size:(Link.frame_size Rbc.msg_size) ~obs ~n:4 ~seed:5 ()
        in
        let tr = Obs_trace.create ~now:(fun () -> Sim.clock sim) () in
        Obs.set_tracer obs tr;
        let delivered = ref 0 in
        let nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:0
            ~deliver:(fun _ _ -> incr delivered) ()
        in
        Rbc.broadcast nodes.(0) "hello";
        Sim.run sim;
        Alcotest.(check int) "all deliver" 4 !delivered;
        let st = Obs_trace.stats tr in
        Alcotest.(check bool) "spans opened" true (st.Obs_trace.spans_started > 0);
        Alcotest.(check int) "every span closed" st.Obs_trace.spans_started
          st.Obs_trace.spans_ended;
        Alcotest.(check int) "none left open" 0 (Obs_trace.open_count tr))
  ]

(* ---------------- protocol attribution ------------------------------- *)

let layer_counter snap layer name =
  Option.value ~default:0
    (R.counter_value snap ~labels:[ ("layer", layer) ] name)

let attribution_tests =
  [ Alcotest.test_case "per-layer counters partition abc traffic" `Quick
      (fun () ->
        let structure = AS.threshold ~n:4 ~t:1 in
        let kr = Keyring.deal ~rsa_bits:192 ~seed:23 structure in
        let obs = Obs.create () in
        let sim =
          Sim.create
            ~size:(Link.frame_size (Abc.msg_size kr))
            ~obs ~n:4 ~seed:7 ()
        in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_abc ~sim ~keyring:kr ~tag:"obs-test"
            ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
        in
        Abc.broadcast nodes.(0) "payload";
        Sim.run sim ~until:(fun () -> Array.for_all (fun l -> l <> []) logs);
        let snap = Obs.snapshot obs in
        let m = Sim.metrics sim in
        List.iter
          (fun layer ->
            Alcotest.(check bool)
              (layer ^ " layer counted") true
              (layer_counter snap layer "messages" > 0))
          [ "abc"; "vba"; "cbc"; "abba" ];
        (* every wire message is attributed to exactly one layer *)
        let layered name =
          List.fold_left
            (fun acc layer -> acc + layer_counter snap layer name)
            0
            [ "abc"; "vba"; "cbc"; "abba" ]
        in
        Alcotest.(check int) "messages partition" m.Metrics.messages_sent
          (layered "messages");
        (* layer bytes are the layer's own payload estimate; the wire
           adds wrapping overhead on top, so the sum is a lower bound *)
        Alcotest.(check bool) "bytes bounded by wire" true
          (layered "bytes" > 0 && layered "bytes" <= m.Metrics.bytes_sent);
        (* the Metrics mirror in the registry agrees with the record *)
        Alcotest.(check (option int)) "sim mirror"
          (Some m.Metrics.messages_sent)
          (R.counter_value snap ~labels:[ ("layer", "sim") ] "messages_sent"));
    Alcotest.test_case "noop obs leaves run unobserved" `Quick (fun () ->
        let sim = Sim.create ~n:3 ~seed:3 () in
        Sim.set_handler sim 1 (fun ~src:_ (_ : int) -> ());
        Sim.send sim ~src:0 ~dst:1 9;
        Sim.run sim;
        Alcotest.(check int) "record still counts" 1
          (Sim.metrics sim).Metrics.messages_sent;
        Alcotest.(check bool) "noop inactive" false (Obs.active (Sim.obs sim)))
  ]

(* ---------------- crypto counters ------------------------------------ *)

let crypto_tests =
  [ Alcotest.test_case "disabled by default, counted when enabled" `Quick
      (fun () ->
        let ps = Schnorr_group.default () in
        let rng = Prng.create ~seed:11 in
        let kp = Schnorr_sig.generate ps rng in
        Obs_crypto.reset ();
        ignore (Schnorr_sig.sign ps kp "off");
        Alcotest.(check int) "off" 0 (Obs_crypto.total ());
        Obs_crypto.enable ();
        Fun.protect ~finally:Obs_crypto.disable (fun () ->
            let sg = Schnorr_sig.sign ps kp "on" in
            Alcotest.(check bool) "verifies" true
              (Schnorr_sig.verify ps ~pk:kp.Schnorr_sig.pk "on" sg);
            Alcotest.(check int) "sign" 1 (Obs_crypto.count Obs_crypto.Sign);
            Alcotest.(check int) "verify" 1
              (Obs_crypto.count Obs_crypto.Verify);
            Alcotest.(check bool) "modexp underneath" true
              (Obs_crypto.count Obs_crypto.Modexp > 0));
        Obs_crypto.reset ();
        Alcotest.(check int) "reset" 0 (Obs_crypto.total ()))
  ]

let suite =
  ( "obs",
    json_tests @ histogram_tests @ registry_tests @ trace_tests
    @ attribution_tests @ crypto_tests )
