(* Optimistic atomic broadcast tests: fast-path ordering and cost, the
   complaint-triggered switch when the sequencer fails, and total-order
   safety across the fast-path/fallback boundary. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

let deploy ~sim ?(patience = 120) () =
  let keyring = Lazy.force kr in
  let logs = Array.make 4 [] in
  let nodes =
    Stack.deploy ~sim ~keyring
      ~make:(fun me io ->
        Optimistic_abc.create ~io ~tag:"opt" ~sequencer:0 ~patience
          ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
          ~timeout:800.0
          ~deliver:(fun p ->
            logs.(io.Proto_io.me) <- p :: logs.(io.Proto_io.me))
          ())
      ~handle:Optimistic_abc.handle ()
  in
  (nodes, logs)

let check_same_order logs honest =
  match honest with
  | [] -> ()
  | h :: rest ->
    List.iter
      (fun i ->
        Alcotest.(check (list string)) "same order" (List.rev logs.(h))
          (List.rev logs.(i)))
      rest

let tests =
  [ Alcotest.test_case "fast path: total order without agreement" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let sim = Sim.create ~n:4 ~seed () in
            let nodes, logs = deploy ~sim () in
            Optimistic_abc.broadcast nodes.(1) "fast-1";
            Optimistic_abc.broadcast nodes.(2) "fast-2";
            Optimistic_abc.broadcast nodes.(3) "fast-3";
            Sim.run sim
              ~until:(fun () -> Array.for_all (fun l -> List.length l >= 3) logs);
            check_same_order logs [ 0; 1; 2; 3 ];
            Array.iteri
              (fun i node ->
                Alcotest.(check bool)
                  (Printf.sprintf "party %d stayed on fast path" i)
                  true
                  (Optimistic_abc.mode node = Optimistic_abc.Fast);
                Alcotest.(check int) "all via fast path" 3
                  (Optimistic_abc.fast_delivered_count node))
              nodes)
          [ 11; 12; 13 ]);
    Alcotest.test_case "fast path is cheaper than full abc" `Quick (fun () ->
        let keyring = Lazy.force kr in
        let opt_msgs =
          let sim =
            Sim.create
              ~size:(Link.frame_size (Optimistic_abc.msg_size keyring))
              ~n:4 ~seed:21 ()
          in
          let nodes, logs = deploy ~sim () in
          Optimistic_abc.broadcast nodes.(1) "payload";
          Sim.run sim
            ~until:(fun () -> Array.for_all (fun l -> List.length l >= 1) logs);
          (Sim.metrics sim).Metrics.bytes_sent
        in
        let abc_msgs =
          let sim =
            Sim.create ~size:(Link.frame_size (Abc.msg_size keyring)) ~n:4
              ~seed:21 ()
          in
          let logs = Array.make 4 [] in
          let nodes =
            Stack.deploy_abc ~sim ~keyring ~tag:"cmp"
              ~deliver:(fun me p -> logs.(me) <- p :: logs.(me)) ()
          in
          Abc.broadcast nodes.(1) "payload";
          Sim.run sim
            ~until:(fun () -> Array.for_all (fun l -> List.length l >= 1) logs);
          (Sim.metrics sim).Metrics.bytes_sent
        in
        Alcotest.(check bool)
          (Printf.sprintf "optimistic %d B < abc %d B" opt_msgs abc_msgs)
          true
          (opt_msgs * 3 < abc_msgs));
    Alcotest.test_case "crashed sequencer: switch to fallback and deliver"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let sim = Sim.create ~n:4 ~seed () in
            let nodes, logs = deploy ~sim ~patience:60 () in
            Sim.crash sim 0;
            Optimistic_abc.broadcast nodes.(1) "survive-1";
            Optimistic_abc.broadcast nodes.(2) "survive-2";
            let honest = [ 1; 2; 3 ] in
            Sim.run sim
              ~until:(fun () ->
                List.for_all (fun i -> List.length logs.(i) >= 2) honest);
            (* let the recovery machinery finish before checking modes *)
            Sim.run sim;
            check_same_order logs honest;
            List.iter
              (fun i ->
                Alcotest.(check bool) "switched" true
                  (Optimistic_abc.mode nodes.(i) = Optimistic_abc.Fallback);
                Alcotest.(check (list string)) "delivered both"
                  (List.sort compare [ "survive-1"; "survive-2" ])
                  (List.sort compare logs.(i)))
              honest)
          [ 31; 32 ]);
    Alcotest.test_case "mid-stream sequencer crash keeps prefix consistent"
      `Quick (fun () ->
        (* deliver some payloads on the fast path, then kill the
           sequencer; the remaining payloads go through the fallback and
           the total order stays identical everywhere *)
        let sim = Sim.create ~n:4 ~seed:41 () in
        let nodes, logs = deploy ~sim ~patience:60 () in
        Optimistic_abc.broadcast nodes.(1) "early-1";
        Optimistic_abc.broadcast nodes.(2) "early-2";
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun l -> List.length l >= 2) logs);
        Array.iteri
          (fun i node ->
            ignore i;
            Alcotest.(check bool) "still fast" true
              (Optimistic_abc.mode node = Optimistic_abc.Fast))
          nodes;
        Sim.crash sim 0;
        Optimistic_abc.broadcast nodes.(3) "late-1";
        Optimistic_abc.broadcast nodes.(1) "late-2";
        let honest = [ 1; 2; 3 ] in
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> List.length logs.(i) >= 4) honest);
        Sim.run sim;
        check_same_order logs honest;
        List.iter
          (fun i ->
            (* the fast-path prefix is a prefix of the final order *)
            let final = List.rev logs.(i) in
            Alcotest.(check (list string)) "prefix preserved"
              [ List.nth final 0; List.nth final 1 ]
              (List.filteri (fun k _ -> k < 2) final);
            Alcotest.(check (list string)) "everything delivered"
              (List.sort compare [ "early-1"; "early-2"; "late-1"; "late-2" ])
              (List.sort compare final))
          honest)
  ]

let suite = ("optimistic", tests)
