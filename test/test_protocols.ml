(* End-to-end protocol tests on the adversarial network simulator:
   reliable broadcast, consistent broadcast, binary agreement (ABBA),
   validated multi-valued agreement (VBA), atomic broadcast and secure
   causal atomic broadcast — each under random schedules, crash faults
   and concrete Byzantine behaviours. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let th72 = AS.threshold ~n:7 ~t:2

let keyring_cache : (int * int, Keyring.t) Hashtbl.t = Hashtbl.create 4

(* Keyrings are deterministic; cache by (n, variant) to keep suites fast. *)
let keyring ?(variant = 0) structure =
  let key = (AS.n structure * 100, variant) in
  match Hashtbl.find_opt keyring_cache key with
  | Some kr when AS.n kr.Keyring.structure = AS.n structure -> kr
  | Some _ | None ->
    let kr = Keyring.deal ~rsa_bits:192 ~seed:(1000 + variant) structure in
    Hashtbl.replace keyring_cache key kr;
    kr

let policies seed : Sim.policy list =
  ignore seed;
  [ Sim.Fifo; Sim.Random_order; Sim.Latency_order ]

(* ---------------- RBC ------------------------------------------------ *)

let run_rbc ~seed ~policy ~crashed () =
  let kr = keyring th41 in
  let sim = Sim.create ~policy ~n:4 ~seed () in
  let outputs = Array.make 4 None in
  let nodes =
    Stack.deploy_rbc ~sim ~keyring:kr ~sender:0 ~deliver:(fun me payload ->
        outputs.(me) <- Some payload) ()
  in
  List.iter (Sim.crash sim) crashed;
  Rbc.broadcast nodes.(0) "hello world";
  Sim.run sim;
  outputs

let rbc_tests =
  [ Alcotest.test_case "rbc: all deliver under every policy" `Quick (fun () ->
        List.iter
          (fun policy ->
            let outputs = run_rbc ~seed:7 ~policy ~crashed:[] () in
            Array.iter
              (fun o ->
                Alcotest.(check (option string)) "delivered" (Some "hello world") o)
              outputs)
          (policies 7));
    Alcotest.test_case "rbc: tolerates one crashed receiver" `Quick (fun () ->
        let outputs = run_rbc ~seed:8 ~policy:Sim.Random_order ~crashed:[ 2 ] () in
        List.iter
          (fun i ->
            Alcotest.(check (option string)) "delivered" (Some "hello world")
              outputs.(i))
          [ 0; 1; 3 ]);
    Alcotest.test_case "rbc: crashed sender delivers nothing" `Quick (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:9 () in
        let outputs = Array.make 4 None in
        let _nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:0 ~deliver:(fun me payload ->
              outputs.(me) <- Some payload) ()
        in
        Sim.crash sim 0;
        Sim.run sim;
        Array.iter
          (fun o -> Alcotest.(check (option string)) "nothing" None o)
          outputs);
    Alcotest.test_case "rbc: equivocating sender cannot split honest parties"
      `Quick (fun () ->
        (* Byzantine sender sends SEND("a") to parties 1,2 and SEND("b")
           to party 3; consistency requires all honest deliver the same
           value (or none). *)
        List.iter
          (fun seed ->
            let kr = keyring th41 in
            let sim = Sim.create ~n:4 ~seed () in
            let outputs = Array.make 4 None in
            let nodes =
              Stack.deploy_rbc ~sim ~keyring:kr ~sender:0
                ~deliver:(fun me payload -> outputs.(me) <- Some payload) ()
            in
            ignore nodes;
            (* replace sender with raw injections *)
            Sim.set_handler sim 0 (fun ~src:_ _ -> ());
            Sim.send sim ~src:0 ~dst:1 (Link.Raw (Rbc.Send "a"));
            Sim.send sim ~src:0 ~dst:2 (Link.Raw (Rbc.Send "a"));
            Sim.send sim ~src:0 ~dst:3 (Link.Raw (Rbc.Send "b"));
            Sim.run sim;
            let delivered =
              List.filter_map (fun i -> outputs.(i)) [ 1; 2; 3 ]
            in
            match delivered with
            | [] -> ()
            | x :: rest ->
              List.iter
                (fun y -> Alcotest.(check string) "consistent" x y)
                rest)
          (List.init 10 (fun i -> 100 + i)));
    Alcotest.test_case "rbc: totality under generalized structure (example1)"
      `Quick (fun () ->
        let s1 = Canonical_structures.example1 () in
        let kr = Keyring.deal ~seed:2001 s1 in
        let sim = Sim.create ~n:9 ~seed:11 () in
        let outputs = Array.make 9 None in
        let nodes =
          Stack.deploy_rbc ~sim ~keyring:kr ~sender:4 ~deliver:(fun me payload ->
              outputs.(me) <- Some payload) ()
        in
        (* crash the whole of class a (a corruptible set) *)
        List.iter (Sim.crash sim) [ 0; 1; 2; 3 ];
        Rbc.broadcast nodes.(4) "multi-class payload";
        Sim.run sim;
        List.iter
          (fun i ->
            Alcotest.(check (option string)) "delivered" (Some "multi-class payload")
              outputs.(i))
          [ 4; 5; 6; 7; 8 ])
  ]

(* ---------------- CBC ------------------------------------------------ *)

let cbc_tests =
  [ Alcotest.test_case "cbc: delivery with certificate" `Quick (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:21 () in
        let outputs = Array.make 4 None in
        let nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"t1" ~sender:2
            ~deliver:(fun me payload _cert -> outputs.(me) <- Some payload)
            ()
        in
        Cbc.broadcast nodes.(2) "consistent payload";
        Sim.run sim;
        Array.iter
          (fun o ->
            Alcotest.(check (option string)) "delivered" (Some "consistent payload") o)
          outputs);
    Alcotest.test_case "cbc: certificate is transferable" `Quick (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:22 () in
        let got = ref None in
        let nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"t2" ~sender:0
            ~deliver:(fun me payload cert ->
              if me = 3 then got := Some (payload, cert))
            ()
        in
        Cbc.broadcast nodes.(0) "transfer me";
        Sim.run sim;
        match !got with
        | None -> Alcotest.fail "party 3 did not deliver"
        | Some (payload, cert) ->
          Alcotest.(check bool) "transferred check" true
            (Cbc.check_transferred ~keyring:kr ~tag:"t2" ~sender:0 payload cert);
          Alcotest.(check bool) "wrong tag fails" false
            (Cbc.check_transferred ~keyring:kr ~tag:"t3" ~sender:0 payload cert);
          Alcotest.(check bool) "wrong payload fails" false
            (Cbc.check_transferred ~keyring:kr ~tag:"t2" ~sender:0 "other" cert));
    Alcotest.test_case "cbc: validation predicate blocks endorsement" `Quick
      (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:23 () in
        let outputs = Array.make 4 None in
        let nodes =
          Stack.deploy_cbc ~sim ~keyring:kr ~tag:"t4" ~sender:0
            ~validate:(fun p -> String.length p < 5)
            ~deliver:(fun me payload _ -> outputs.(me) <- Some payload)
            ()
        in
        Cbc.broadcast nodes.(0) "way too long to be valid";
        Sim.run sim;
        Array.iter
          (fun o -> Alcotest.(check (option string)) "blocked" None o)
          outputs);
    Alcotest.test_case "cbc: equivocating sender obtains at most one cert"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let kr = keyring th41 in
            let sim = Sim.create ~n:4 ~seed () in
            let outputs = Array.make 4 None in
            let _nodes =
              Stack.deploy_cbc ~sim ~keyring:kr ~tag:"t5" ~sender:0
                ~deliver:(fun me payload _ -> outputs.(me) <- Some payload)
                ()
            in
            (* Byzantine sender: SEND "x" to 1,2 and "y" to 3; it cannot
               assemble certificates for both, so honest deliveries agree. *)
            Sim.set_handler sim 0 (fun ~src:_ _ -> ());
            Sim.send sim ~src:0 ~dst:1 (Link.Raw (Cbc.Send "x"));
            Sim.send sim ~src:0 ~dst:2 (Link.Raw (Cbc.Send "x"));
            Sim.send sim ~src:0 ~dst:3 (Link.Raw (Cbc.Send "y"));
            Sim.run sim;
            let delivered =
              List.filter_map (fun i -> outputs.(i)) [ 1; 2; 3 ]
            in
            match delivered with
            | [] -> ()
            | x :: rest ->
              List.iter (fun y -> Alcotest.(check string) "unique" x y) rest)
          (List.init 5 (fun i -> 300 + i)))
  ]

(* ---------------- ABBA ----------------------------------------------- *)

let run_abba ~structure ~variant ~seed ~policy ~inputs ~crashed ?byzantine ()
    =
  let n = AS.n structure in
  let kr = keyring ~variant structure in
  let sim = Sim.create ~policy ~n ~seed () in
  let decisions = Array.make n None in
  let nodes =
    Stack.deploy_abba ~sim ~keyring:kr ~tag:(Printf.sprintf "abba-%d" seed)
      ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
  in
  List.iter (Sim.crash sim) crashed;
  (match byzantine with
  | Some (party, behavior) -> Sim.set_handler sim party behavior
  | None -> ());
  Array.iteri
    (fun i node ->
      if (not (List.mem i crashed)) && Some i <> Option.map fst byzantine then
        Abba.propose node inputs.(i))
    nodes;
  Sim.run sim;
  (decisions, nodes)

let check_abba_agreement ~honest decisions inputs =
  let decided = List.filter_map (fun i -> decisions.(i)) honest in
  Alcotest.(check int) "all honest decided" (List.length honest)
    (List.length decided);
  (match decided with
  | [] -> Alcotest.fail "nobody decided"
  | d :: rest ->
    List.iter (fun d' -> Alcotest.(check bool) "agreement" true (d = d')) rest;
    (* validity: the decision is the input of some honest party *)
    Alcotest.(check bool) "validity" true
      (List.exists (fun i -> inputs.(i) = d) honest))

let abba_tests =
  [ Alcotest.test_case "abba: unanimous inputs decide that value" `Quick
      (fun () ->
        List.iter
          (fun (seed, b) ->
            let inputs = Array.make 4 b in
            let decisions, _ =
              run_abba ~structure:th41 ~variant:0 ~seed ~policy:Sim.Random_order
                ~inputs ~crashed:[] ()
            in
            List.iter
              (fun i ->
                Alcotest.(check (option bool)) "decide input" (Some b) decisions.(i))
              [ 0; 1; 2; 3 ])
          [ (41, true); (42, false); (43, true) ]);
    Alcotest.test_case "abba: mixed inputs agree (many seeds/policies)" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            List.iter
              (fun policy ->
                let inputs = [| true; false; true; false |] in
                let decisions, _ =
                  run_abba ~structure:th41 ~variant:0 ~seed ~policy ~inputs
                    ~crashed:[] ()
                in
                check_abba_agreement ~honest:[ 0; 1; 2; 3 ] decisions inputs)
              (policies seed))
          (List.init 8 (fun i -> 500 + i)));
    Alcotest.test_case "abba: tolerates a crashed party" `Quick (fun () ->
        List.iter
          (fun seed ->
            let inputs = [| true; false; false; true |] in
            let decisions, _ =
              run_abba ~structure:th41 ~variant:0 ~seed ~policy:Sim.Random_order
                ~inputs ~crashed:[ 3 ] ()
            in
            check_abba_agreement ~honest:[ 0; 1; 2 ] decisions inputs)
          (List.init 6 (fun i -> 600 + i)));
    Alcotest.test_case "abba: byzantine spammer cannot break agreement" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let inputs = [| true; false; true; false |] in
            let kr = keyring th41 in
            (* the corrupted party floods everyone with junk votes and
               equivocating supports *)
            let spam sim =
             fun ~src:_ (_ : Abba.msg Link.frame) ->
              let share b =
                Keyring.cert_share kr ~party:3
                  (Ro.encode [ "abba-sup"; Printf.sprintf "abba-%d" seed;
                               string_of_bool b ])
              in
              Sim.send sim ~src:3 ~dst:0
                (Link.Raw (Abba.Support (true, share true)));
              Sim.send sim ~src:3 ~dst:1
                (Link.Raw (Abba.Support (false, share false)))
            in
            let n = 4 in
            let sim = Sim.create ~n ~seed () in
            let decisions = Array.make n None in
            let nodes =
              Stack.deploy_abba ~sim ~keyring:kr
                ~tag:(Printf.sprintf "abba-%d" seed)
                ~on_decide:(fun me b -> decisions.(me) <- Some b) ()
            in
            Sim.set_handler sim 3 (spam sim);
            Array.iteri
              (fun i node -> if i < 3 then Abba.propose node inputs.(i))
              nodes;
            Sim.run sim;
            check_abba_agreement ~honest:[ 0; 1; 2 ] decisions inputs)
          (List.init 5 (fun i -> 700 + i)));
    Alcotest.test_case "abba: n=7 t=2 with two crashes" `Quick (fun () ->
        let inputs = [| true; false; true; false; true; false; true |] in
        let decisions, _ =
          run_abba ~structure:th72 ~variant:7 ~seed:801 ~policy:Sim.Random_order
            ~inputs ~crashed:[ 5; 6 ] ()
        in
        check_abba_agreement ~honest:[ 0; 1; 2; 3; 4 ] decisions inputs);
    Alcotest.test_case "abba: generalized structure (example1), class crash"
      `Quick (fun () ->
        let s1 = Canonical_structures.example1 () in
        let inputs = [| true; true; false; false; true; false; true; false; true |] in
        let decisions, _ =
          run_abba ~structure:s1 ~variant:91 ~seed:901 ~policy:Sim.Random_order
            ~inputs ~crashed:[ 0; 1; 2; 3 ] ()
        in
        check_abba_agreement ~honest:[ 4; 5; 6; 7; 8 ] decisions inputs)
  ]

(* ---------------- VBA ------------------------------------------------ *)

let run_vba ~seed ~policy ~crashed ~values ?(validate = fun _ -> true) () =
  let kr = keyring th41 in
  let sim = Sim.create ~policy ~n:4 ~seed () in
  let results = Array.make 4 None in
  let nodes =
    Stack.deploy_vba ~sim ~keyring:kr ~tag:(Printf.sprintf "vba-%d" seed)
      ~validate
      ~on_decide:(fun me ~winner value -> results.(me) <- Some (winner, value))
      ()
  in
  List.iter (Sim.crash sim) crashed;
  Array.iteri
    (fun i node -> if not (List.mem i crashed) then Vba.propose node values.(i))
    nodes;
  Sim.run sim;
  results

let vba_tests =
  [ Alcotest.test_case "vba: agreement on a proposed value" `Quick (fun () ->
        List.iter
          (fun seed ->
            let values = [| "v0"; "v1"; "v2"; "v3" |] in
            let results = run_vba ~seed ~policy:Sim.Random_order ~crashed:[] ~values () in
            let decided = Array.to_list results |> List.filter_map Fun.id in
            Alcotest.(check int) "all decided" 4 (List.length decided);
            match decided with
            | [] -> assert false
            | (w, v) :: rest ->
              List.iter
                (fun (w', v') ->
                  Alcotest.(check int) "same winner" w w';
                  Alcotest.(check string) "same value" v v')
                rest;
              Alcotest.(check string) "value is winner's proposal"
                values.(w) v)
          (List.init 6 (fun i -> 1100 + i)));
    Alcotest.test_case "vba: external validity filters proposals" `Quick
      (fun () ->
        (* only even-length values are valid; corrupted parties 0 and 2
           push invalid proposals through raw CBC sends, which honest
           parties refuse to endorse — the decision must be valid *)
        let validate v = String.length v mod 2 = 0 in
        List.iter
          (fun seed ->
            let kr = keyring th41 in
            let sim = Sim.create ~n:4 ~seed () in
            let results = Array.make 4 None in
            let nodes =
              Stack.deploy_vba ~sim ~keyring:kr
                ~tag:(Printf.sprintf "vba-ev-%d" seed) ~validate
                ~on_decide:(fun me ~winner value ->
                  results.(me) <- Some (winner, value))
                ()
            in
            (* the corrupted proposer injects an odd-length (invalid)
               payload; honest parties refuse to endorse it *)
            for dst = 0 to 3 do
              Sim.send sim ~src:0 ~dst
                (Link.Raw (Vba.Proposal_cbc (0, Cbc.Send "bad")))
            done;
            Vba.propose nodes.(1) "ok";
            Vba.propose nodes.(2) "fine";
            Vba.propose nodes.(3) "good";
            Sim.run sim;
            List.iter
              (fun i ->
                match results.(i) with
                | None -> Alcotest.fail "undecided"
                | Some (winner, v) ->
                  Alcotest.(check bool) "decided value valid" true (validate v);
                  Alcotest.(check bool) "winner is honest" true (winner > 0))
              [ 1; 2; 3 ])
          (List.init 4 (fun i -> 1200 + i)));
    Alcotest.test_case "vba: progress with a crashed party" `Quick (fun () ->
        List.iter
          (fun seed ->
            let values = [| "a"; "b"; "c"; "d" |] in
            let results =
              run_vba ~seed ~policy:Sim.Random_order ~crashed:[ 1 ] ~values ()
            in
            List.iter
              (fun i ->
                Alcotest.(check bool) "decided" true (results.(i) <> None))
              [ 0; 2; 3 ])
          (List.init 4 (fun i -> 1300 + i)))
  ]

(* ---------------- ABC ------------------------------------------------ *)

let run_abc ~seed ~policy ~crashed ~submissions ?(n = 4)
    ?(structure = th41) ?(variant = 0) () =
  let kr = keyring ~variant structure in
  let sim = Sim.create ~policy ~n ~seed () in
  let logs = Array.make n [] in
  let nodes =
    Stack.deploy_abc ~sim ~keyring:kr ~tag:(Printf.sprintf "abc-%d" seed)
      ~deliver:(fun me payload -> logs.(me) <- payload :: logs.(me)) ()
  in
  List.iter (Sim.crash sim) crashed;
  List.iter
    (fun (party, payload) ->
      if not (List.mem party crashed) then Abc.broadcast nodes.(party) payload)
    submissions;
  let honest = List.filter (fun i -> not (List.mem i crashed)) (List.init n Fun.id) in
  let expected = List.length (List.sort_uniq compare (List.map snd submissions)) in
  (try
     Sim.run sim
       ~until:(fun () ->
         List.for_all (fun i -> List.length logs.(i) >= expected) honest)
   with Sim.Out_of_steps _ -> ());
  (Array.map List.rev logs, honest)

let check_total_order logs honest =
  match honest with
  | [] -> ()
  | h :: rest ->
    List.iter
      (fun i ->
        Alcotest.(check (list string)) "identical delivery order" logs.(h)
          logs.(i))
      rest

let abc_tests =
  [ Alcotest.test_case "abc: total order, concurrent submissions" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            List.iter
              (fun policy ->
                let submissions =
                  [ (0, "tx-alpha"); (1, "tx-beta"); (2, "tx-gamma"); (3, "tx-delta") ]
                in
                let logs, honest =
                  run_abc ~seed ~policy ~crashed:[] ~submissions ()
                in
                check_total_order logs honest;
                List.iter
                  (fun i ->
                    Alcotest.(check int) "all delivered" 4 (List.length logs.(i));
                    Alcotest.(check (list string)) "same set"
                      (List.sort compare (List.map snd submissions))
                      (List.sort compare logs.(i)))
                  honest)
              (policies seed))
          [ 2000; 2001 ]);
    Alcotest.test_case "abc: liveness with a crashed server" `Quick (fun () ->
        let submissions = [ (0, "m1"); (2, "m2") ] in
        let logs, honest =
          run_abc ~seed:2100 ~policy:Sim.Random_order ~crashed:[ 1 ] ~submissions ()
        in
        check_total_order logs honest;
        List.iter
          (fun i -> Alcotest.(check int) "delivered both" 2 (List.length logs.(i)))
          honest);
    Alcotest.test_case "abc: single submitter, multiple payloads" `Quick
      (fun () ->
        let submissions = [ (0, "p1"); (0, "p2"); (0, "p3") ] in
        let logs, honest =
          run_abc ~seed:2200 ~policy:Sim.Random_order ~crashed:[] ~submissions ()
        in
        check_total_order logs honest;
        List.iter
          (fun i -> Alcotest.(check int) "delivered all" 3 (List.length logs.(i)))
          honest);
    Alcotest.test_case "abc: duplicate submissions delivered once" `Quick
      (fun () ->
        let submissions = [ (0, "dup"); (1, "dup"); (2, "dup") ] in
        let logs, honest =
          run_abc ~seed:2300 ~policy:Sim.Random_order ~crashed:[] ~submissions ()
        in
        check_total_order logs honest;
        List.iter
          (fun i -> Alcotest.(check (list string)) "once" [ "dup" ] logs.(i))
          honest)
  ]

(* ---------------- SC-ABC --------------------------------------------- *)

let scabc_tests =
  [ Alcotest.test_case "scabc: confidential requests delivered in order"
      `Quick (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:2500 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_scabc ~sim ~keyring:kr ~tag:"scabc-1"
            ~deliver:(fun me ~label payload ->
              logs.(me) <- (label, payload) :: logs.(me)) ()
        in
        let rng = Prng.create ~seed:77 in
        let ct1 = Scabc.encrypt_request kr rng ~label:"alice" "patent: flying car" in
        let ct2 = Scabc.encrypt_request kr rng ~label:"bob" "patent: time machine" in
        Scabc.broadcast nodes.(0) ct1;
        Scabc.broadcast nodes.(2) ct2;
        Sim.run sim
          ~until:(fun () ->
            Array.for_all (fun l -> List.length l >= 2) logs);
        let l0 = List.rev logs.(0) in
        Array.iter
          (fun l -> Alcotest.(check bool) "same order" true (List.rev l = l0))
          logs;
        Alcotest.(check (list string)) "plaintexts recovered"
          (List.sort compare [ "patent: flying car"; "patent: time machine" ])
          (List.sort compare (List.map snd l0));
        Alcotest.(check (list string)) "labels preserved"
          (List.sort compare [ "alice"; "bob" ])
          (List.sort compare (List.map fst l0)));
    Alcotest.test_case "scabc: invalid ciphertext is skipped" `Quick (fun () ->
        let kr = keyring th41 in
        let sim = Sim.create ~n:4 ~seed:2600 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_scabc ~sim ~keyring:kr ~tag:"scabc-2"
            ~deliver:(fun me ~label:_ payload -> logs.(me) <- payload :: logs.(me)) ()
        in
        let rng = Prng.create ~seed:78 in
        let good = Scabc.encrypt_request kr rng ~label:"c" "legit" in
        Scabc.broadcast nodes.(1) "not a ciphertext at all";
        Scabc.broadcast nodes.(0) good;
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun l -> List.length l >= 1) logs);
        Array.iter
          (fun l -> Alcotest.(check (list string)) "only legit" [ "legit" ] l)
          logs)
  ]

let suite =
  ( "protocols",
    rbc_tests @ cbc_tests @ abba_tests @ vba_tests @ abc_tests @ scabc_tests )
