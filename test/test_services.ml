(* Trusted-service tests (paper, Section 5): CA, directory and notary on
   the replicated engine, with clients assembling threshold-signed
   answers; includes a Byzantine server, a generalized-structure
   deployment, and the notary front-running scenario that motivates
   secure causal atomic broadcast. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1

let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:5001 th41)

let deploy_service ~seed ~mode ~make_app ?(structure = th41) ?keyring ?obs ()
    =
  let kr =
    match keyring with
    | Some kr -> kr
    | None ->
      if structure == th41 then Lazy.force kr41
      else Keyring.deal ~rsa_bits:192 ~seed:(seed + 9000) structure
  in
  let sim = Sim.create ?obs ~n:(AS.n structure) ~seed () in
  let nodes = Service.deploy ~sim ~keyring:kr ~mode ~make_app () in
  (sim, kr, nodes)

(* Issue one request and run the simulator until the client callback
   fires (or the network goes quiescent). *)
let roundtrip sim kr ~mode ~client_slot ~seed body =
  let client = Service.Client.create ~sim ~keyring:kr ~slot:client_slot ~seed in
  let result = ref None in
  Service.Client.request client ~mode body (fun response s ->
      result := Some (response, s));
  Sim.run sim ~until:(fun () -> !result <> None);
  match !result with
  | None -> Alcotest.fail "client request did not complete"
  | Some r -> r

let ca_tests =
  [ Alcotest.test_case "ca: issue and verify a certificate" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6001 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let response, service_sig =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:1
            (Ca.issue_request ~id:"alice" ~pubkey:"pk-alice" ~credentials:"papers!ok")
        in
        (match Ca.parse_certificate response with
        | Some (id, pubkey, serial) ->
          Alcotest.(check string) "id" "alice" id;
          Alcotest.(check string) "pubkey" "pk-alice" pubkey;
          Alcotest.(check int) "serial" 0 serial
        | None -> Alcotest.fail "expected certificate");
        (* The certificate = response + service signature; the statement
           binds the request digest, which the client knows. *)
        ignore service_sig);
    Alcotest.test_case "ca: bad credentials denied" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6002 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let response, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:2
            (Ca.issue_request ~id:"mallory" ~pubkey:"pk-m" ~credentials:"forged")
        in
        Alcotest.(check bool) "denied" true (Ca.parse_certificate response = None));
    Alcotest.test_case "ca: issue, lookup, revoke sequence" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6003 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:3
            (Ca.issue_request ~id:"bob" ~pubkey:"pk-bob" ~credentials:"x!ok")
        in
        Alcotest.(check bool) "issued" true (Ca.parse_certificate r1 <> None);
        let r2, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:4
            (Ca.lookup_request ~id:"bob")
        in
        (match Ca.parse_certificate r2 with
        | Some (_, pk, _) -> Alcotest.(check string) "lookup pubkey" "pk-bob" pk
        | None -> Alcotest.fail "lookup failed");
        let _r3, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:5
            (Ca.revoke_request ~id:"bob")
        in
        let r4, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:6
            (Ca.lookup_request ~id:"bob")
        in
        Alcotest.(check bool) "revoked invisible" true
          (Ca.parse_certificate r4 = None));
    Alcotest.test_case "ca: survives a crashed server" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6004 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        Sim.crash sim 2;
        let response, service_sig =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:7
            (Ca.issue_request ~id:"carol" ~pubkey:"pk-c" ~credentials:"y!ok")
        in
        Alcotest.(check bool) "issued" true (Ca.parse_certificate response <> None);
        ignore service_sig);
    Alcotest.test_case "ca: byzantine server cannot forge the answer" `Quick
      (fun () ->
        (* server 3 sends garbage responses with its own share to the
           client; the client's share verification and the threshold
           signature keep the certificate honest *)
        let sim, kr, nodes =
          deploy_service ~seed:6005 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        ignore nodes;
        let evil ~src:_ (m : Service.msg) =
          match m with
          | Service.Request { client; body } ->
            (* respond immediately with a forged denial *)
            let req_digest = Sha256.digest body in
            let response = Codec.encode [ "denied"; "forged by server 3" ] in
            let share =
              Keyring.service_sign_share kr ~party:3
                (Service.response_statement ~req_digest ~response)
            in
            Sim.send sim ~src:3 ~dst:client
              (Service.Response { req_digest; server = 3; response; share })
          | Service.Engine _ | Service.Response _ -> ()
        in
        Sim.set_handler sim 3 evil;
        let response, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:8
            (Ca.issue_request ~id:"dave" ~pubkey:"pk-d" ~credentials:"z!ok")
        in
        match Ca.parse_certificate response with
        | Some (id, _, _) -> Alcotest.(check string) "honest answer wins" "dave" id
        | None -> Alcotest.fail "client accepted the forged denial")
  ]

let directory_tests =
  [ Alcotest.test_case "directory: bind then lookup (signed)" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6101 ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        let _r, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:11
            (Directory_service.bind_request ~key:"www.example.com" ~value:"192.0.2.7")
        in
        let r, signature =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:12
            (Directory_service.lookup_request ~key:"www.example.com")
        in
        (match Directory_service.parse_value r with
        | Some (k, v) ->
          Alcotest.(check string) "key" "www.example.com" k;
          Alcotest.(check string) "value" "192.0.2.7" v
        | None -> Alcotest.fail "lookup failed");
        ignore signature);
    Alcotest.test_case "directory: update visible to later lookups" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6102 ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:13
            (Directory_service.bind_request ~key:"k" ~value:"v1")
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:14
            (Directory_service.bind_request ~key:"k" ~value:"v2")
        in
        let r, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:15
            (Directory_service.lookup_request ~key:"k")
        in
        match Directory_service.parse_value r with
        | Some (_, v) -> Alcotest.(check string) "updated" "v2" v
        | None -> Alcotest.fail "lookup failed");
    Alcotest.test_case "directory on example2 structure (site+OS corruption)"
      `Quick (fun () ->
        (* the multi-national deployment of the paper: 16 servers in a
           4x4 location/OS grid; crash one full site plus one full OS
           and the directory still answers with a valid signature *)
        let s2 = Canonical_structures.example2 () in
        let kr = Keyring.deal ~seed:6103 s2 in
        let sim = Sim.create ~n:16 ~seed:6103 () in
        let _nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        Pset.iter (Sim.crash sim)
          (Canonical_structures.example2_site_plus_os ~row:1 ~col:2);
        let r, signature =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:16 ~seed:16
            (Directory_service.bind_request ~key:"hq" ~value:"zurich")
        in
        Alcotest.(check bool) "bound despite 7 corruptions" true
          (Codec.decode r = Some [ "bound"; "hq" ]);
        ignore signature)
  ]

let notary_tests =
  [ Alcotest.test_case "notary: registration assigns sequence numbers"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6201 ~mode:Service.Confidential
            ~make_app:Notary.make_app ()
        in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:4 ~seed:21
            (Notary.register_request ~document:"invention: perpetuum mobile")
        in
        (match Notary.parse_registration r1 with
        | Some (seq, _) -> Alcotest.(check int) "first seq" 0 seq
        | None -> Alcotest.fail "registration failed");
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:5 ~seed:22
            (Notary.register_request ~document:"invention: warp drive")
        in
        match Notary.parse_registration r2 with
        | Some (seq, _) -> Alcotest.(check int) "second seq" 1 seq
        | None -> Alcotest.fail "registration failed");
    Alcotest.test_case "notary: duplicate registration returns original seq"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6202 ~mode:Service.Confidential
            ~make_app:Notary.make_app ()
        in
        let doc = "the same idea" in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:4 ~seed:23
            (Notary.register_request ~document:doc)
        in
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:5 ~seed:24
            (Notary.register_request ~document:doc)
        in
        match (Notary.parse_registration r1, Notary.parse_registration r2) with
        | Some (s1, d1), Some (s2, d2) ->
          Alcotest.(check int) "same seq" s1 s2;
          Alcotest.(check string) "same digest" d1 d2
        | _ -> Alcotest.fail "registrations failed");
    Alcotest.test_case
      "notary: requests stay confidential until ordered (front-running)"
      `Quick (fun () ->
        (* A corrupted server watches all engine traffic for the
           plaintext of a pending filing.  With SC-ABC the payload it
           sees is a TDH2 ciphertext, so the document text never appears
           in any message before the corresponding decryption shares are
           released — i.e. before its position in the order is fixed. *)
        let secret_doc = "secret-invention-xyzzy" in
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:6203 () in
        let leaked = ref false in
        let nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Confidential
            ~make_app:Notary.make_app ()
        in
        let spy_wraps (m : Service.msg) =
          (* search the raw broadcast payloads for the plaintext *)
          let contains_secret s =
            let n = String.length s and m = String.length secret_doc in
            let rec go i =
              i + m <= n && (String.sub s i m = secret_doc || go (i + 1))
            in
            go 0
          in
          match m with
          | Service.Request { body; _ } -> contains_secret body
          | Service.Engine (Service.Abc_m (Abc.Request p))
          | Service.Engine
              (Service.Scabc_m (Scabc.Abc_msg (Abc.Request p))) ->
            contains_secret p
          | Service.Engine _ | Service.Response _ -> false
        in
        (* server 3 is the spy: it behaves honestly but records whether
           any pre-decryption message reveals the document *)
        let honest_handler = fun ~src m -> Service.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src m ->
            let before_decryption =
              Scabc.delivered_count
                (match nodes.(3).Service.engine with
                | Some (Service.Scabc_e sc) -> sc
                | Some (Service.Abc_e _) | None -> assert false)
              = 0
            in
            if before_decryption && spy_wraps m then leaked := true;
            honest_handler ~src m);
        let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:25 in
        let result = ref None in
        Service.Client.request client ~mode:Service.Confidential
          (Notary.register_request ~document:secret_doc) (fun r s ->
            result := Some (r, s));
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "registered" true (!result <> None);
        Alcotest.(check bool) "plaintext never visible before ordering" false
          !leaked);
    Alcotest.test_case "notary (plain abc) leaks the document pre-ordering"
      `Quick (fun () ->
        (* Control experiment: with plain atomic broadcast the document
           text is visible to every server before ordering completes. *)
        let secret_doc = "secret-invention-plain" in
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:6204 () in
        let leaked = ref false in
        let nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
            ~make_app:Notary.make_app ()
        in
        let contains_secret s =
          let n = String.length s and m = String.length secret_doc in
          let rec go i =
            i + m <= n && (String.sub s i m = secret_doc || go (i + 1))
          in
          go 0
        in
        let honest_handler = fun ~src m -> Service.handle nodes.(3) ~src m in
        Sim.set_handler sim 3 (fun ~src m ->
            (match m with
            | Service.Request { body; _ } when contains_secret body ->
              leaked := true
            | Service.Engine (Service.Abc_m (Abc.Request p))
              when contains_secret p ->
              leaked := true
            | Service.Request _ | Service.Engine _ | Service.Response _ -> ());
            honest_handler ~src m);
        let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:26 in
        let result = ref None in
        Service.Client.request client ~mode:Service.Plain
          (Notary.register_request ~document:secret_doc) (fun r s ->
            result := Some (r, s));
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "registered" true (!result <> None);
        Alcotest.(check bool) "plaintext visible with plain abc" true !leaked)
  ]

(* The request path's replay guard: ordered duplicates of the same
   (client, nonce) must not re-execute the state machine — under the
   confidential engine a corrupted server can re-encrypt a captured
   request under fresh TDH2 randomness, and the distinct ciphertext
   passes the broadcast's content dedup. *)
let dedup_tests =
  [ Alcotest.test_case "execution dedups a replayed (client, nonce)" `Quick
      (fun () ->
        let sim, _, nodes =
          deploy_service ~seed:6301 ~mode:Service.Plain ~make_app:Ca.make_app
            ~obs:(Obs.create ()) ()
        in
        let request nonce body =
          Codec.encode [ "0"; nonce; body ]
        in
        let server = nodes.(0) in
        Service.deliver_ordered server (request "n1" (Ca.issue_request ~id:"a" ~pubkey:"pk-a" ~credentials:"cred-a"));
        Service.deliver_ordered server (request "n1" (Ca.issue_request ~id:"a" ~pubkey:"pk-a" ~credentials:"cred-a"));
        Service.deliver_ordered server (request "n2" (Ca.issue_request ~id:"b" ~pubkey:"pk-b" ~credentials:"cred-b"));
        Sim.run sim;
        Alcotest.(check int) "executed once per distinct nonce" 2
          server.Service.executed;
        Alcotest.(check int) "replay suppressed and counted" 1
          server.Service.dup_suppressed;
        (* The suppressed duplicate still re-answers from cache, so the
           observability counter is the only way to tell it happened. *)
        match
          Obs_registry.find
            (Obs.snapshot (Sim.obs sim))
            ~labels:[ ("layer", "service") ]
            "service_dup_suppressed"
        with
        | Some (Obs_registry.Vcounter c) ->
          Alcotest.(check bool) "counter incremented" true (c >= 1)
        | _ -> Alcotest.fail "missing service_dup_suppressed counter");
    Alcotest.test_case "distinct clients with equal nonces both execute"
      `Quick (fun () ->
        let sim, _, nodes =
          deploy_service ~seed:6302 ~mode:Service.Plain ~make_app:Ca.make_app
            ()
        in
        let server = nodes.(0) in
        Service.deliver_ordered server
          (Codec.encode [ "0"; "n1"; Ca.issue_request ~id:"a" ~pubkey:"p" ~credentials:"c" ]);
        Service.deliver_ordered server
          (Codec.encode [ "1"; "n1"; Ca.issue_request ~id:"b" ~pubkey:"q" ~credentials:"c" ]);
        Sim.run sim;
        Alcotest.(check int) "both executed" 2 server.Service.executed;
        Alcotest.(check int) "nothing suppressed" 0
          server.Service.dup_suppressed) ]

let suite =
  ("services", ca_tests @ directory_tests @ notary_tests @ dedup_tests)
