(* Trusted-service tests (paper, Section 5): CA, directory and notary on
   the replicated engine, with clients assembling threshold-signed
   answers; includes a Byzantine server, a generalized-structure
   deployment, and the notary front-running scenario that motivates
   secure causal atomic broadcast. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1

let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:5001 th41)

let deploy_service ~seed ~mode ~make_app ?(structure = th41) ?keyring ?obs
    ?read_only () =
  let kr =
    match keyring with
    | Some kr -> kr
    | None ->
      if structure == th41 then Lazy.force kr41
      else Keyring.deal ~rsa_bits:192 ~seed:(seed + 9000) structure
  in
  let sim = Sim.create ?obs ~n:(AS.n structure) ~seed () in
  let nodes =
    Service.nodes
      (Service.deploy ~sim ~keyring:kr ~mode ?read_only ~make_app ())
  in
  (sim, kr, nodes)

(* Issue one request and run the simulator until the client callback
   fires (or the network goes quiescent).  Every accepted certificate is
   re-verified under the service public key. *)
let roundtrip sim kr ~mode ~client_slot ~seed body =
  let client =
    Service.Client.create ~sim ~keyring:kr ~slot:client_slot ~seed ()
  in
  let result = ref None in
  Service.Client.request client ~mode body (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  match !result with
  | None -> Alcotest.fail "client request did not complete"
  | Some rc ->
    Alcotest.(check bool) "reply certificate verifies" true
      (Service.verify_reply_cert kr rc);
    (rc.Service.rc_response, rc)

let ca_tests =
  [ Alcotest.test_case "ca: issue and verify a certificate" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6001 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let response, service_sig =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:1
            (Ca.issue_request ~id:"alice" ~pubkey:"pk-alice" ~credentials:"papers!ok")
        in
        (match Ca.parse_certificate response with
        | Some (id, pubkey, serial) ->
          Alcotest.(check string) "id" "alice" id;
          Alcotest.(check string) "pubkey" "pk-alice" pubkey;
          Alcotest.(check int) "serial" 0 serial
        | None -> Alcotest.fail "expected certificate");
        (* The certificate = response + service signature; the statement
           binds the request digest, which the client knows. *)
        ignore service_sig);
    Alcotest.test_case "ca: bad credentials denied" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6002 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let response, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:2
            (Ca.issue_request ~id:"mallory" ~pubkey:"pk-m" ~credentials:"forged")
        in
        Alcotest.(check bool) "denied" true (Ca.parse_certificate response = None));
    Alcotest.test_case "ca: issue, lookup, revoke sequence" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6003 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:3
            (Ca.issue_request ~id:"bob" ~pubkey:"pk-bob" ~credentials:"x!ok")
        in
        Alcotest.(check bool) "issued" true (Ca.parse_certificate r1 <> None);
        let r2, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:4
            (Ca.lookup_request ~id:"bob")
        in
        (match Ca.parse_certificate r2 with
        | Some (_, pk, _) -> Alcotest.(check string) "lookup pubkey" "pk-bob" pk
        | None -> Alcotest.fail "lookup failed");
        let _r3, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:5
            (Ca.revoke_request ~id:"bob")
        in
        let r4, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:6
            (Ca.lookup_request ~id:"bob")
        in
        Alcotest.(check bool) "revoked invisible" true
          (Ca.parse_certificate r4 = None));
    Alcotest.test_case "ca: survives a crashed server" `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6004 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        Sim.crash sim 2;
        let response, service_sig =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:7
            (Ca.issue_request ~id:"carol" ~pubkey:"pk-c" ~credentials:"y!ok")
        in
        Alcotest.(check bool) "issued" true (Ca.parse_certificate response <> None);
        ignore service_sig);
    Alcotest.test_case "ca: byzantine server cannot forge the answer" `Quick
      (fun () ->
        (* server 3 sends garbage responses with its own share to the
           client; the client's share verification and the threshold
           signature keep the certificate honest *)
        let sim, kr, nodes =
          deploy_service ~seed:6005 ~mode:Service.Plain ~make_app:Ca.make_app ()
        in
        ignore nodes;
        let evil ~src:_ (frame : Service.msg Link.frame) =
          match frame with
          | Link.Raw (Service.Request { client; body })
          | Link.Data { payload = Service.Request { client; body }; _ } ->
            (* respond immediately with a forged denial *)
            let req_digest = Sha256.digest body in
            let response = Codec.encode [ "denied"; "forged by server 3" ] in
            let share =
              Keyring.service_sign_share kr ~party:3
                (Service.response_statement ~req_digest ~response)
            in
            Sim.send sim ~src:3 ~dst:client
              (Link.Raw
                 (Service.Response
                    (Codec.encode_svc_reply ~fast:false ~req_digest ~server:3
                       ~response ~share:(Keyring.sig_share_to_bytes kr share))))
          | Link.Raw _ | Link.Data _ | Link.Ack _ -> ()
        in
        Sim.set_handler sim 3 evil;
        let response, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:8
            (Ca.issue_request ~id:"dave" ~pubkey:"pk-d" ~credentials:"z!ok")
        in
        match Ca.parse_certificate response with
        | Some (id, _, _) -> Alcotest.(check string) "honest answer wins" "dave" id
        | None -> Alcotest.fail "client accepted the forged denial")
  ]

let directory_tests =
  [ Alcotest.test_case "directory: bind then lookup (signed)" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6101 ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        let _r, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:11
            (Directory_service.bind_request ~key:"www.example.com" ~value:"192.0.2.7")
        in
        let r, signature =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:12
            (Directory_service.lookup_request ~key:"www.example.com")
        in
        (match Directory_service.parse_value r with
        | Some (k, v) ->
          Alcotest.(check string) "key" "www.example.com" k;
          Alcotest.(check string) "value" "192.0.2.7" v
        | None -> Alcotest.fail "lookup failed");
        ignore signature);
    Alcotest.test_case "directory: update visible to later lookups" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6102 ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:13
            (Directory_service.bind_request ~key:"k" ~value:"v1")
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:14
            (Directory_service.bind_request ~key:"k" ~value:"v2")
        in
        let r, _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:5 ~seed:15
            (Directory_service.lookup_request ~key:"k")
        in
        match Directory_service.parse_value r with
        | Some (_, v) -> Alcotest.(check string) "updated" "v2" v
        | None -> Alcotest.fail "lookup failed");
    Alcotest.test_case "directory on example2 structure (site+OS corruption)"
      `Quick (fun () ->
        (* the multi-national deployment of the paper: 16 servers in a
           4x4 location/OS grid; crash one full site plus one full OS
           and the directory still answers with a valid signature *)
        let s2 = Canonical_structures.example2 () in
        let kr = Keyring.deal ~seed:6103 s2 in
        let sim = Sim.create ~n:16 ~seed:6103 () in
        let _nodes =
          Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
            ~make_app:Directory_service.make_app ()
        in
        Pset.iter (Sim.crash sim)
          (Canonical_structures.example2_site_plus_os ~row:1 ~col:2);
        let r, signature =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:16 ~seed:16
            (Directory_service.bind_request ~key:"hq" ~value:"zurich")
        in
        Alcotest.(check bool) "bound despite 7 corruptions" true
          (Codec.decode r = Some [ "bound"; "hq" ]);
        ignore signature)
  ]

let notary_tests =
  [ Alcotest.test_case "notary: registration assigns sequence numbers"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6201 ~mode:Service.Confidential
            ~make_app:Notary.make_app ()
        in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:4 ~seed:21
            (Notary.register_request ~document:"invention: perpetuum mobile")
        in
        (match Notary.parse_registration r1 with
        | Some (seq, _) -> Alcotest.(check int) "first seq" 0 seq
        | None -> Alcotest.fail "registration failed");
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:5 ~seed:22
            (Notary.register_request ~document:"invention: warp drive")
        in
        match Notary.parse_registration r2 with
        | Some (seq, _) -> Alcotest.(check int) "second seq" 1 seq
        | None -> Alcotest.fail "registration failed");
    Alcotest.test_case "notary: duplicate registration returns original seq"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6202 ~mode:Service.Confidential
            ~make_app:Notary.make_app ()
        in
        let doc = "the same idea" in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:4 ~seed:23
            (Notary.register_request ~document:doc)
        in
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client_slot:5 ~seed:24
            (Notary.register_request ~document:doc)
        in
        match (Notary.parse_registration r1, Notary.parse_registration r2) with
        | Some (s1, d1), Some (s2, d2) ->
          Alcotest.(check int) "same seq" s1 s2;
          Alcotest.(check string) "same digest" d1 d2
        | _ -> Alcotest.fail "registrations failed");
    Alcotest.test_case
      "notary: requests stay confidential until ordered (front-running)"
      `Quick (fun () ->
        (* A corrupted server watches all engine traffic for the
           plaintext of a pending filing.  With SC-ABC the payload it
           sees is a TDH2 ciphertext, so the document text never appears
           in any message before the corresponding decryption shares are
           released — i.e. before its position in the order is fixed. *)
        let secret_doc = "secret-invention-xyzzy" in
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:6203 () in
        let leaked = ref false in
        let nodes =
          Service.nodes
            (Service.deploy ~sim ~keyring:kr ~mode:Service.Confidential
               ~make_app:Notary.make_app ())
        in
        let spy_wraps (m : Service.msg) =
          (* search the raw broadcast payloads for the plaintext *)
          let contains_secret s =
            let n = String.length s and m = String.length secret_doc in
            let rec go i =
              i + m <= n && (String.sub s i m = secret_doc || go (i + 1))
            in
            go 0
          in
          match m with
          | Service.Request { body; _ } | Service.Query { body; _ } ->
            contains_secret body
          | Service.Engine (Service.Abc_m (Abc.Request p))
          | Service.Engine
              (Service.Scabc_m (Scabc.Abc_msg (Abc.Request p))) ->
            contains_secret p
          | Service.Engine _ | Service.Response _ -> false
        in
        (* server 3 is the spy: it behaves honestly but records whether
           any pre-decryption message reveals the document *)
        Sim.wrap_handler sim 3 (fun honest ~src frame ->
            let before_decryption =
              Scabc.delivered_count
                (match nodes.(3).Service.engine with
                | Some (Service.Scabc_e sc) -> sc
                | Some _ | None -> assert false)
              = 0
            in
            (if before_decryption then
               match frame with
               | Link.Raw m | Link.Data { payload = m; _ } ->
                 if spy_wraps m then leaked := true
               | Link.Ack _ -> ());
            honest ~src frame);
        let client =
          Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:25 ()
        in
        let result = ref None in
        Service.Client.request client ~mode:Service.Confidential
          (Notary.register_request ~document:secret_doc) (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "registered" true (!result <> None);
        Alcotest.(check bool) "plaintext never visible before ordering" false
          !leaked);
    Alcotest.test_case "notary (plain abc) leaks the document pre-ordering"
      `Quick (fun () ->
        (* Control experiment: with plain atomic broadcast the document
           text is visible to every server before ordering completes. *)
        let secret_doc = "secret-invention-plain" in
        let kr = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:6204 () in
        let leaked = ref false in
        let nodes =
          Service.nodes
            (Service.deploy ~sim ~keyring:kr ~mode:Service.Plain
               ~make_app:Notary.make_app ())
        in
        let contains_secret s =
          let n = String.length s and m = String.length secret_doc in
          let rec go i =
            i + m <= n && (String.sub s i m = secret_doc || go (i + 1))
          in
          go 0
        in
        ignore nodes;
        Sim.wrap_handler sim 3 (fun honest ~src frame ->
            (match frame with
            | Link.Raw m | Link.Data { payload = m; _ } -> (
              match m with
              | Service.Request { body; _ } when contains_secret body ->
                leaked := true
              | Service.Engine (Service.Abc_m (Abc.Request p))
                when contains_secret p ->
                leaked := true
              | Service.Request _ | Service.Query _ | Service.Engine _
              | Service.Response _ ->
                ())
            | Link.Ack _ -> ());
            honest ~src frame);
        let client =
          Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:26 ()
        in
        let result = ref None in
        Service.Client.request client ~mode:Service.Plain
          (Notary.register_request ~document:secret_doc) (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        Alcotest.(check bool) "registered" true (!result <> None);
        Alcotest.(check bool) "plaintext visible with plain abc" true !leaked)
  ]

(* The request path's replay guard: ordered duplicates of the same
   (client, nonce) must not re-execute the state machine — under the
   confidential engine a corrupted server can re-encrypt a captured
   request under fresh TDH2 randomness, and the distinct ciphertext
   passes the broadcast's content dedup. *)
let dedup_tests =
  [ Alcotest.test_case "execution dedups a replayed (client, nonce)" `Quick
      (fun () ->
        let sim, _, nodes =
          deploy_service ~seed:6301 ~mode:Service.Plain ~make_app:Ca.make_app
            ~obs:(Obs.create ()) ()
        in
        let request nonce body =
          Codec.encode_svc_request ~client:0 ~nonce ~body
        in
        let server = nodes.(0) in
        Service.deliver_ordered server (request "n1" (Ca.issue_request ~id:"a" ~pubkey:"pk-a" ~credentials:"cred-a"));
        Service.deliver_ordered server (request "n1" (Ca.issue_request ~id:"a" ~pubkey:"pk-a" ~credentials:"cred-a"));
        Service.deliver_ordered server (request "n2" (Ca.issue_request ~id:"b" ~pubkey:"pk-b" ~credentials:"cred-b"));
        Sim.run sim;
        Alcotest.(check int) "executed once per distinct nonce" 2
          server.Service.executed;
        Alcotest.(check int) "replay suppressed and counted" 1
          server.Service.dup_suppressed;
        (* The suppressed duplicate still re-answers from cache, so the
           observability counter is the only way to tell it happened. *)
        match
          Obs_registry.find
            (Obs.snapshot (Sim.obs sim))
            ~labels:[ ("layer", "service") ]
            "service_dup_suppressed"
        with
        | Some (Obs_registry.Vcounter c) ->
          Alcotest.(check bool) "counter incremented" true (c >= 1)
        | _ -> Alcotest.fail "missing service_dup_suppressed counter");
    Alcotest.test_case "distinct clients with equal nonces both execute"
      `Quick (fun () ->
        let sim, _, nodes =
          deploy_service ~seed:6302 ~mode:Service.Plain ~make_app:Ca.make_app
            ()
        in
        let server = nodes.(0) in
        Service.deliver_ordered server
          (Codec.encode_svc_request ~client:0 ~nonce:"n1"
             ~body:(Ca.issue_request ~id:"a" ~pubkey:"p" ~credentials:"c"));
        Service.deliver_ordered server
          (Codec.encode_svc_request ~client:1 ~nonce:"n1"
             ~body:(Ca.issue_request ~id:"b" ~pubkey:"q" ~credentials:"c"));
        Sim.run sim;
        Alcotest.(check int) "both executed" 2 server.Service.executed;
        Alcotest.(check int) "nothing suppressed" 0
          server.Service.dup_suppressed) ]

(* ------------------------------------------------------------------ *)
(* Read-only fast path                                                 *)
(* ------------------------------------------------------------------ *)

let run_query sim kr ~slot ~seed ?fast_attempts ~mode body =
  let client =
    Service.Client.create ?fast_attempts ~sim ~keyring:kr ~slot ~seed ()
  in
  let result = ref None in
  Service.Client.query client ~mode body (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  match !result with
  | None -> Alcotest.fail "query did not complete"
  | Some rc ->
    Alcotest.(check bool) "query certificate verifies" true
      (Service.verify_reply_cert kr rc);
    (rc, client)

let fastpath_tests =
  [ Alcotest.test_case "query: read-only lookup assembles a fast cert" `Quick
      (fun () ->
        let sim, kr, nodes =
          deploy_service ~seed:6401 ~mode:Service.Plain
            ~make_app:Directory_service.make_app
            ~read_only:Directory_service.read_only ()
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:31
            (Directory_service.bind_request ~key:"k" ~value:"v")
        in
        let executed_before = nodes.(0).Service.executed in
        let rc, client =
          run_query sim kr ~slot:5 ~seed:32 ~mode:Service.Plain
            (Directory_service.lookup_request ~key:"k")
        in
        Alcotest.(check bool) "fast domain" true rc.Service.rc_fast;
        (match Directory_service.parse_value rc.Service.rc_response with
        | Some (_, v) -> Alcotest.(check string) "value" "v" v
        | None -> Alcotest.fail "lookup failed");
        Alcotest.(check int) "client counted the fast hit" 1
          (Service.Client.fastpath_hits client);
        (* no broadcast round: the ordered log did not grow *)
        Alcotest.(check int) "nothing newly ordered" executed_before
          nodes.(0).Service.executed;
        Alcotest.(check bool) "replicas served the query" true
          (Array.exists (fun n -> n.Service.queries_served > 0) nodes));
    Alcotest.test_case "query: mutating body refused, falls back to ordered"
      `Quick (fun () ->
        let sim, kr, nodes =
          deploy_service ~seed:6402 ~mode:Service.Plain
            ~make_app:Directory_service.make_app
            ~read_only:Directory_service.read_only ()
        in
        let rc, client =
          run_query sim kr ~slot:4 ~seed:33 ~fast_attempts:1
            ~mode:Service.Plain
            (Directory_service.bind_request ~key:"w" ~value:"x")
        in
        Alcotest.(check bool) "completed on the ordered path" false
          rc.Service.rc_fast;
        Alcotest.(check int) "one fallback" 1 (Service.Client.fallbacks client);
        Alcotest.(check int) "no fast hit" 0
          (Service.Client.fastpath_hits client);
        Alcotest.(check bool) "replicas refused the write as a query" true
          (Array.exists (fun n -> n.Service.queries_refused > 0) nodes);
        Alcotest.(check bool) "the write executed" true
          (nodes.(0).Service.executed > 0));
    Alcotest.test_case "query: forged content cannot outvote honest answers"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6403 ~mode:Service.Plain
            ~make_app:Directory_service.make_app
            ~read_only:Directory_service.read_only ()
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:34
            (Directory_service.bind_request ~key:"k" ~value:"honest")
        in
        (* server 3 answers every query with a forged value under a
           perfectly valid share: one share is below every qualified
           set, so the forgery never assembles *)
        Sim.set_handler sim 3 (fun ~src:_ (frame : Service.msg Link.frame) ->
            match frame with
            | Link.Raw (Service.Query { client; body })
            | Link.Data { payload = Service.Query { client; body }; _ } ->
              let req_digest = Sha256.digest body in
              let response = Codec.encode [ "value"; "k"; "forged" ] in
              let share =
                Keyring.service_sign_share kr ~party:3
                  (Service.query_statement ~req_digest ~response)
              in
              Sim.send sim ~src:3 ~dst:client
                (Link.Raw
                   (Service.Response
                      (Codec.encode_svc_reply ~fast:true ~req_digest
                         ~server:3 ~response
                         ~share:(Keyring.sig_share_to_bytes kr share))))
            | Link.Raw _ | Link.Data _ | Link.Ack _ -> ());
        let rc, _ =
          run_query sim kr ~slot:5 ~seed:35 ~mode:Service.Plain
            (Directory_service.lookup_request ~key:"k")
        in
        match Directory_service.parse_value rc.Service.rc_response with
        | Some (_, v) -> Alcotest.(check string) "honest value wins" "honest" v
        | None -> Alcotest.fail "lookup failed");
    Alcotest.test_case "query: reply claiming another server's slot rejected"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6404 ~mode:Service.Plain
            ~make_app:Directory_service.make_app
            ~read_only:Directory_service.read_only ()
        in
        let _ =
          roundtrip sim kr ~mode:Service.Plain ~client_slot:4 ~seed:36
            (Directory_service.bind_request ~key:"k" ~value:"v")
        in
        (* honest servers drop queries entirely; server 3 impersonates
           server 0 with a genuine share — so the ONLY fast replies the
           client sees carry a transport source that contradicts the
           claimed server slot *)
        for i = 0 to 2 do
          Sim.wrap_handler sim i (fun honest ~src frame ->
              match frame with
              | Link.Raw (Service.Query _)
              | Link.Data { payload = Service.Query _; _ } ->
                ()
              | _ -> honest ~src frame)
        done;
        Sim.wrap_handler sim 3 (fun honest ~src frame ->
            match frame with
            | Link.Raw (Service.Query { client; body })
            | Link.Data { payload = Service.Query { client; body }; _ } ->
              let req_digest = Sha256.digest body in
              let response = Codec.encode [ "value"; "k"; "v" ] in
              let share =
                Keyring.service_sign_share kr ~party:3
                  (Service.query_statement ~req_digest ~response)
              in
              Sim.send sim ~src:3 ~dst:client
                (Link.Raw
                   (Service.Response
                      (Codec.encode_svc_reply ~fast:true ~req_digest
                         ~server:0 ~response
                         ~share:(Keyring.sig_share_to_bytes kr share))))
            | _ -> honest ~src frame);
        let rc, client =
          run_query sim kr ~slot:5 ~seed:37 ~mode:Service.Plain
            (Directory_service.lookup_request ~key:"k")
        in
        Alcotest.(check bool) "impersonation counted as rejected" true
          (Service.Client.rejected_replies client >= 1);
        Alcotest.(check bool) "never assembles from forged sources" false
          rc.Service.rc_fast;
        match Directory_service.parse_value rc.Service.rc_response with
        | Some (_, v) ->
          Alcotest.(check string) "ordered fallback answers honestly" "v" v
        | None -> Alcotest.fail "lookup failed");
    Alcotest.test_case
      "ordered request refuses fast-kind replies (no write downgrade)" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy_service ~seed:6405 ~mode:Service.Plain
            ~make_app:Directory_service.make_app
            ~read_only:Directory_service.read_only ()
        in
        (* server 3 tries to answer an ordered write with a fast-domain
           reply — accepting it would mean the write never serialized *)
        Sim.set_handler sim 3 (fun ~src:_ (frame : Service.msg Link.frame) ->
            match frame with
            | Link.Raw (Service.Request { client; body })
            | Link.Data { payload = Service.Request { client; body }; _ } ->
              let req_digest = Sha256.digest body in
              let response = Codec.encode [ "bound"; "k" ] in
              let share =
                Keyring.service_sign_share kr ~party:3
                  (Service.query_statement ~req_digest ~response)
              in
              Sim.send sim ~src:3 ~dst:client
                (Link.Raw
                   (Service.Response
                      (Codec.encode_svc_reply ~fast:true ~req_digest
                         ~server:3 ~response
                         ~share:(Keyring.sig_share_to_bytes kr share))))
            | Link.Raw _ | Link.Data _ | Link.Ack _ -> ());
        let client =
          Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:38 ()
        in
        let result = ref None in
        Service.Client.request client ~mode:Service.Plain
          (Directory_service.bind_request ~key:"k" ~value:"v") (fun rc ->
            result := Some rc);
        Sim.run sim ~until:(fun () -> !result <> None);
        match !result with
        | None -> Alcotest.fail "request did not complete"
        | Some rc ->
          Alcotest.(check bool) "ordered certificate" false rc.Service.rc_fast;
          Alcotest.(check bool) "fast-kind reply rejected" true
            (Service.Client.rejected_replies client >= 1))
  ]

(* ------------------------------------------------------------------ *)
(* Reply certificates: negative paths                                  *)
(* ------------------------------------------------------------------ *)

let cert_tests =
  let kr = Lazy.force kr41 in
  let d = Sha256.digest "some request frame" in
  let resp = "the answer" in
  let stmt = Service.response_statement ~req_digest:d ~response:resp in
  let assemble parties stmt =
    Keyring.service_combine kr stmt
      (List.map (fun p -> Keyring.service_sign_share kr ~party:p stmt) parties)
  in
  [ Alcotest.test_case "reply cert: t+1 shares assemble, bytes round-trip"
      `Quick (fun () ->
        match assemble [ 0; 1 ] stmt with
        | None -> Alcotest.fail "combine failed on a qualified set"
        | Some sg ->
          let rc =
            { Service.rc_fast = false; rc_req_digest = d; rc_response = resp;
              rc_sig = sg }
          in
          Alcotest.(check bool) "verifies" true
            (Service.verify_reply_cert kr rc);
          let b = Service.reply_cert_to_bytes kr rc in
          (match Service.reply_cert_of_bytes kr b with
          | None -> Alcotest.fail "decode failed"
          | Some rc' ->
            Alcotest.(check bool) "round-tripped cert verifies" true
              (Service.verify_reply_cert kr rc');
            Alcotest.(check string) "response preserved" resp
              rc'.Service.rc_response));
    Alcotest.test_case "reply cert: sub-threshold share set fails" `Quick
      (fun () ->
        let ok =
          match assemble [ 0 ] stmt with
          | None -> true
          | Some sg ->
            not
              (Service.verify_reply_cert kr
                 { Service.rc_fast = false; rc_req_digest = d;
                   rc_response = resp; rc_sig = sg })
        in
        Alcotest.(check bool) "one share below t+1 never certifies" true ok);
    Alcotest.test_case "reply cert: wrong-statement share poisons assembly"
      `Quick (fun () ->
        let other =
          Service.response_statement ~req_digest:d ~response:"something else"
        in
        let shares =
          [ Keyring.service_sign_share kr ~party:0 stmt;
            Keyring.service_sign_share kr ~party:1 other ]
        in
        let ok =
          match Keyring.service_combine kr stmt shares with
          | None -> true
          | Some sg -> not (Keyring.service_verify kr stmt sg)
        in
        Alcotest.(check bool) "mixed statements never certify" true ok);
    Alcotest.test_case "reply cert: mixed digest rejected" `Quick (fun () ->
        match assemble [ 0; 1 ] stmt with
        | None -> Alcotest.fail "combine failed"
        | Some sg ->
          let rc =
            { Service.rc_fast = false;
              rc_req_digest = Sha256.digest "a different request";
              rc_response = resp; rc_sig = sg }
          in
          Alcotest.(check bool) "digest is bound by the signature" false
            (Service.verify_reply_cert kr rc));
    Alcotest.test_case "reply cert: fast cert cannot pose as ordered" `Quick
      (fun () ->
        let qstmt = Service.query_statement ~req_digest:d ~response:resp in
        match assemble [ 0; 1 ] qstmt with
        | None -> Alcotest.fail "combine failed"
        | Some sg ->
          let fast_rc =
            { Service.rc_fast = true; rc_req_digest = d; rc_response = resp;
              rc_sig = sg }
          in
          Alcotest.(check bool) "verifies in its own domain" true
            (Service.verify_reply_cert kr fast_rc);
          Alcotest.(check bool) "rejected in the ordered domain" false
            (Service.verify_reply_cert kr
               { fast_rc with Service.rc_fast = false }))
  ]

(* ------------------------------------------------------------------ *)
(* Request parsing: the empty-nonce regression                         *)
(* ------------------------------------------------------------------ *)

let u64_be v =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xff))

let nonce_tests =
  [ Alcotest.test_case "parse_request rejects an empty nonce" `Quick
      (fun () ->
        (* hand-build the frame: the encoder refuses to produce it *)
        let body = Ca.lookup_request ~id:"x" in
        let frame =
          "SVQ1" ^ u64_be 0 ^ u64_be 0 ^ u64_be (String.length body) ^ body
        in
        Alcotest.(check bool) "rejected" true
          (Service.parse_request frame = None);
        Alcotest.(check bool) "encoder refuses an empty nonce" true
          (try
             ignore (Codec.encode_svc_request ~client:0 ~nonce:"" ~body);
             false
           with Invalid_argument _ -> true);
        (* a well-formed frame still parses *)
        match
          Service.parse_request
            (Codec.encode_svc_request ~client:7 ~nonce:"n" ~body)
        with
        | Some (7, "n", b) -> Alcotest.(check string) "body" body b
        | _ -> Alcotest.fail "well-formed frame rejected");
    Alcotest.test_case "ordered empty-nonce frame counts as malformed" `Quick
      (fun () ->
        let sim, _, nodes =
          deploy_service ~seed:6501 ~mode:Service.Plain ~make_app:Ca.make_app
            ()
        in
        let server = nodes.(0) in
        let body = Ca.issue_request ~id:"a" ~pubkey:"p" ~credentials:"c" in
        let frame =
          "SVQ1" ^ u64_be 0 ^ u64_be 0 ^ u64_be (String.length body) ^ body
        in
        Service.deliver_ordered server frame;
        Service.deliver_ordered server frame;
        Sim.run sim;
        Alcotest.(check int) "nothing executed" 0 server.Service.executed;
        Alcotest.(check int) "both counted malformed" 2
          server.Service.malformed;
        Alcotest.(check int) "no dedup slot consumed" 0
          server.Service.dup_suppressed)
  ]

let suite =
  ( "services",
    ca_tests @ directory_tests @ notary_tests @ dedup_tests @ fastpath_tests
    @ cert_tests @ nonce_tests )
