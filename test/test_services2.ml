(* Tests for the remaining Section 5 applications: the authentication
   service (ticket granting) and the fair-exchange trusted party. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:5001 th41)

let deploy ~seed ~mode ~make_app =
  let kr = Lazy.force kr41 in
  let sim = Sim.create ~n:4 ~seed () in
  let nodes = Service.nodes (Service.deploy ~sim ~keyring:kr ~mode ~make_app ()) in
  (sim, kr, nodes)

let roundtrip sim kr ~mode ~client body =
  let result = ref None in
  Service.Client.request client ~mode body (fun rc -> result := Some rc);
  Sim.run sim ~until:(fun () -> !result <> None);
  match !result with
  | None -> Alcotest.fail "request did not complete"
  | Some rc ->
    Alcotest.(check bool) "reply certificate verifies" true
      (Service.verify_reply_cert kr rc);
    (rc.Service.rc_response, rc)

let auth_tests =
  [ Alcotest.test_case "auth: register, login, ticket verifies" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy ~seed:7001 ~mode:Service.Confidential
            ~make_app:Auth_service.make_app
        in
        let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:1 () in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.register_request ~user:"alice" ~password:"hunter2"
               ~salt:"s1")
        in
        Alcotest.(check (option (list string))) "registered"
          (Some [ "registered"; "alice" ])
          (Codec.decode r1);
        let r2, _signature =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.login_request ~user:"alice" ~password:"hunter2")
        in
        (match Auth_service.parse_ticket r2 with
        | Some (user, issued) ->
          Alcotest.(check string) "user" "alice" user;
          Alcotest.(check bool) "logical time positive" true (issued > 0)
        | None -> Alcotest.fail "expected a ticket"));
    Alcotest.test_case "auth: wrong password denied" `Quick (fun () ->
        let sim, kr, _ =
          deploy ~seed:7002 ~mode:Service.Confidential
            ~make_app:Auth_service.make_app
        in
        let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:2 () in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.register_request ~user:"bob" ~password:"pw" ~salt:"s")
        in
        let r, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.login_request ~user:"bob" ~password:"guess")
        in
        Alcotest.(check bool) "denied" true (Auth_service.parse_ticket r = None));
    Alcotest.test_case "auth: password change invalidates the old one" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy ~seed:7003 ~mode:Service.Confidential
            ~make_app:Auth_service.make_app
        in
        let client = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:3 () in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.register_request ~user:"c" ~password:"old" ~salt:"s")
        in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.change_password_request ~user:"c" ~old_password:"old"
               ~new_password:"new" ~salt:"s2")
        in
        let r_old, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.login_request ~user:"c" ~password:"old")
        in
        let r_new, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client
            (Auth_service.login_request ~user:"c" ~password:"new")
        in
        Alcotest.(check bool) "old rejected" true
          (Auth_service.parse_ticket r_old = None);
        Alcotest.(check bool) "new accepted" true
          (Auth_service.parse_ticket r_new <> None))
  ]

let fx_tests =
  [ Alcotest.test_case "fair exchange: both sides collect the counterpart"
      `Quick (fun () ->
        let sim, kr, _ =
          deploy ~seed:7101 ~mode:Service.Confidential
            ~make_app:Fair_exchange.make_app
        in
        let alice = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:4 () in
        let bob = Service.Client.create ~sim ~keyring:kr ~slot:5 ~seed:5 () in
        let item_a = "deed: one castle" and item_b = "payment: 1000 gulden" in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:alice
            (Fair_exchange.open_request ~xid:"x1"
               ~expect_left:(Fair_exchange.item_digest item_a)
               ~expect_right:(Fair_exchange.item_digest item_b))
        in
        let r1, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:alice
            (Fair_exchange.deposit_request ~xid:"x1" ~side:Fair_exchange.Left
               ~item:item_a)
        in
        Alcotest.(check bool) "waiting after one deposit" true
          (match Codec.decode r1 with
          | Some [ "deposited"; _; _; "waiting" ] -> true
          | _ -> false);
        (* alice cannot collect early *)
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:alice
            (Fair_exchange.collect_request ~xid:"x1" ~side:Fair_exchange.Left)
        in
        Alcotest.(check bool) "early collect denied" true
          (Fair_exchange.parse_item r2 = None);
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:bob
            (Fair_exchange.deposit_request ~xid:"x1" ~side:Fair_exchange.Right
               ~item:item_b)
        in
        let ra, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:alice
            (Fair_exchange.collect_request ~xid:"x1" ~side:Fair_exchange.Left)
        in
        let rb, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:bob
            (Fair_exchange.collect_request ~xid:"x1" ~side:Fair_exchange.Right)
        in
        Alcotest.(check (option (pair string string))) "alice gets payment"
          (Some ("x1", item_b))
          (Fair_exchange.parse_item ra);
        Alcotest.(check (option (pair string string))) "bob gets deed"
          (Some ("x1", item_a))
          (Fair_exchange.parse_item rb));
    Alcotest.test_case "fair exchange: mismatched item rejected" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy ~seed:7102 ~mode:Service.Confidential
            ~make_app:Fair_exchange.make_app
        in
        let c = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:6 () in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.open_request ~xid:"x2"
               ~expect_left:(Fair_exchange.item_digest "real item")
               ~expect_right:(Fair_exchange.item_digest "other item"))
        in
        let r, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.deposit_request ~xid:"x2" ~side:Fair_exchange.Left
               ~item:"counterfeit")
        in
        Alcotest.(check bool) "rejected" true
          (match Codec.decode r with
          | Some ("denied" :: _) -> true
          | _ -> false));
    Alcotest.test_case "fair exchange: abort refunds the depositor" `Quick
      (fun () ->
        let sim, kr, _ =
          deploy ~seed:7103 ~mode:Service.Confidential
            ~make_app:Fair_exchange.make_app
        in
        let c = Service.Client.create ~sim ~keyring:kr ~slot:4 ~seed:7 () in
        let item = "lonely deposit" in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.open_request ~xid:"x3"
               ~expect_left:(Fair_exchange.item_digest item)
               ~expect_right:(Fair_exchange.item_digest "never arrives"))
        in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.deposit_request ~xid:"x3" ~side:Fair_exchange.Left ~item)
        in
        let _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.abort_request ~xid:"x3")
        in
        (* no counterpart, but the own item comes back *)
        let r, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.collect_request ~xid:"x3" ~side:Fair_exchange.Left)
        in
        Alcotest.(check (option (pair string string))) "refunded"
          (Some ("x3", item))
          (Fair_exchange.parse_refund r);
        (* and late deposits are refused *)
        let r2, _ =
          roundtrip sim kr ~mode:Service.Confidential ~client:c
            (Fair_exchange.deposit_request ~xid:"x3" ~side:Fair_exchange.Right
               ~item:"never arrives")
        in
        Alcotest.(check bool) "late deposit denied" true
          (match Codec.decode r2 with
          | Some ("denied" :: _) -> true
          | _ -> false))
  ]

let suite = ("services2", auth_tests @ fx_tests)
