(* Tests for party sets, polynomials, monotone formulas, adversary
   structures (including the paper's Examples 1 and 2) and the
   Benaloh-Leichter LSSS. *)

module B = Bignum
module F = Monotone_formula
module AS = Adversary_structure

let q17 = B.of_string "170141183460469231731687303715884105727" (* 2^127-1 *)

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let pset_tests =
  [ Alcotest.test_case "pset basics" `Quick (fun () ->
        let s = Pset.of_list [ 0; 3; 5 ] in
        Alcotest.(check int) "card" 3 (Pset.card s);
        Alcotest.(check bool) "mem 3" true (Pset.mem 3 s);
        Alcotest.(check bool) "mem 1" false (Pset.mem 1 s);
        Alcotest.(check (list int)) "to_list" [ 0; 3; 5 ] (Pset.to_list s);
        Alcotest.(check int) "complement card" 3 (Pset.card (Pset.complement 6 s)));
    qtest "pset union/inter/diff laws"
      QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
      (fun (a, b) ->
        Pset.card (Pset.union a b) + Pset.card (Pset.inter a b)
        = Pset.card a + Pset.card b
        && Pset.subset (Pset.diff a b) a
        && Pset.disjoint (Pset.diff a b) b);
    qtest "pset roundtrip list" QCheck2.Gen.(int_bound 0x3FFFFF) (fun s ->
        Pset.equal s (Pset.of_list (Pset.to_list s)))
  ]

let poly_tests =
  [ Alcotest.test_case "constant poly" `Quick (fun () ->
        let rng = Prng.create ~seed:5 in
        let p = Poly.random rng ~modulus:q17 ~degree:0 ~secret:(B.of_int 42) in
        Alcotest.(check bool) "eval anywhere" true
          (B.equal (B.of_int 42) (Poly.eval_at_int p 17)));
    qtest ~count:50 "shamir interpolation recovers secret"
      QCheck2.Gen.(triple (int_range 0 5) (int_bound 1000000) int)
      (fun (degree, secret, seed) ->
        let rng = Prng.create ~seed in
        let p = Poly.random rng ~modulus:q17 ~degree ~secret:(B.of_int secret) in
        (* Evaluate at degree+1 distinct points and interpolate at 0. *)
        let xs = List.init (degree + 1) (fun i -> (2 * i) + 1) in
        let coeffs = Poly.lagrange_at_zero ~modulus:q17 xs in
        let v =
          List.fold_left
            (fun acc (x, lam) ->
              B.erem (B.add acc (B.mul lam (Poly.eval_at_int p x))) q17)
            B.zero coeffs
        in
        B.equal v (B.of_int secret));
    qtest ~count:50 "lagrange coefficients sum to one"
      QCheck2.Gen.(list_size (int_range 1 8) (int_range 1 100))
      (fun xs ->
        let xs = List.sort_uniq compare xs in
        let coeffs = Poly.lagrange_at_zero ~modulus:q17 xs in
        B.equal B.one
          (List.fold_left (fun acc (_, l) -> B.add_mod acc l q17) B.zero coeffs));
    Alcotest.test_case "lagrange rejects duplicate points" `Quick (fun () ->
        Alcotest.check_raises "duplicate"
          (Invalid_argument "Poly.lagrange_at_zero: duplicate evaluation point")
          (fun () -> ignore (Poly.lagrange_at_zero ~modulus:q17 [ 1; 2; 2 ])));
    Alcotest.test_case "lagrange rejects zero point" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Poly.lagrange_at_zero: zero evaluation point")
          (fun () -> ignore (Poly.lagrange_at_zero ~modulus:q17 [ 0; 1 ])))
  ]

let formula_tests =
  [ Alcotest.test_case "threshold eval" `Quick (fun () ->
        let f = F.simple_threshold ~n:4 ~k:2 in
        Alcotest.(check bool) "2 of 4" true (F.eval f (Pset.of_list [ 1; 3 ]));
        Alcotest.(check bool) "1 of 4" false (F.eval f (Pset.of_list [ 2 ])));
    Alcotest.test_case "and/or" `Quick (fun () ->
        let f = F.and_ [ F.leaf 0; F.or_ [ F.leaf 1; F.leaf 2 ] ] in
        Alcotest.(check bool) "0,2" true (F.eval f (Pset.of_list [ 0; 2 ]));
        Alcotest.(check bool) "1,2" false (F.eval f (Pset.of_list [ 1; 2 ])));
    Alcotest.test_case "weighted threshold" `Quick (fun () ->
        (* weights 3,1,1 need 3: party 0 alone qualifies, 1+2 do not *)
        let f = F.weighted_threshold ~weights:[ 3; 1; 1 ] ~k:3 in
        Alcotest.(check bool) "heavy alone" true (F.eval f (Pset.singleton 0));
        Alcotest.(check bool) "two light" false (F.eval f (Pset.of_list [ 1; 2 ])));
    qtest "eval monotone"
      QCheck2.Gen.(pair (int_bound 0x1FF) (int_bound 0x1FF))
      (fun (s1, s2) ->
        let f =
          F.and_
            [ F.simple_threshold ~n:9 ~k:3;
              Canonical_structures.class_cover
                ~classes:Canonical_structures.example1_classes ~k:2 ]
        in
        (not (F.eval f s1)) || F.eval f (Pset.union s1 s2))
  ]

let structure_tests =
  [ Alcotest.test_case "threshold structure predicates" `Quick (fun () ->
        let s = AS.threshold ~n:7 ~t:2 in
        Alcotest.(check bool) "q3" true (AS.satisfies_q3 s);
        Alcotest.(check bool) "big_quorum 5" true
          (AS.big_quorum s (Pset.of_list [ 0; 1; 2; 3; 4 ]));
        Alcotest.(check bool) "big_quorum 4" false
          (AS.big_quorum s (Pset.of_list [ 0; 1; 2; 3 ]));
        Alcotest.(check bool) "two_cover 5" true
          (AS.two_cover s (Pset.of_list [ 0; 1; 2; 3; 4 ]));
        Alcotest.(check bool) "two_cover 4" false
          (AS.two_cover s (Pset.of_list [ 0; 1; 2; 3 ]));
        Alcotest.(check bool) "honest 3" true
          (AS.contains_honest s (Pset.of_list [ 0; 1; 2 ]));
        Alcotest.(check bool) "honest 2" false
          (AS.contains_honest s (Pset.of_list [ 0; 1 ])));
    Alcotest.test_case "threshold q3 boundary" `Quick (fun () ->
        Alcotest.(check bool) "n=4 t=1" true (AS.satisfies_q3 (AS.threshold ~n:4 ~t:1));
        Alcotest.(check bool) "n=3 t=1" false (AS.satisfies_q3 (AS.threshold ~n:3 ~t:1));
        Alcotest.(check bool) "n=10 t=3" true (AS.satisfies_q3 (AS.threshold ~n:10 ~t:3));
        Alcotest.(check bool) "n=9 t=3" false (AS.satisfies_q3 (AS.threshold ~n:9 ~t:3)));
    Alcotest.test_case "general matches threshold" `Quick (fun () ->
        (* A threshold structure expressed as a general formula must agree
           with the fast-path implementation on every predicate. *)
        let th = AS.threshold ~n:7 ~t:2 in
        let gen =
          AS.of_access_formula ~n:7 (F.simple_threshold ~n:7 ~k:3)
        in
        Pset.iter_subsets 7 (fun s ->
            Alcotest.(check bool) "qualified" (AS.is_qualified th s) (AS.is_qualified gen s);
            Alcotest.(check bool) "big_quorum" (AS.big_quorum th s) (AS.big_quorum gen s);
            Alcotest.(check bool) "two_cover" (AS.two_cover th s) (AS.two_cover gen s);
            Alcotest.(check bool) "honest" (AS.contains_honest th s)
              (AS.contains_honest gen s));
        Alcotest.(check bool) "q3" (AS.satisfies_q3 th) (AS.satisfies_q3 gen);
        Alcotest.(check int) "maximal count"
          (List.length (AS.maximal_adversary_sets th))
          (List.length (AS.maximal_adversary_sets gen)));
    Alcotest.test_case "example1: paper claims" `Quick (fun () ->
        let s = Canonical_structures.example1 () in
        (* Q^3 holds ("One may readily verify that A1 satisfies Q^3"). *)
        Alcotest.(check bool) "q3" true (AS.satisfies_q3 s);
        (* All of class a = {1..4} (0-indexed 0..3) is corruptible. *)
        Alcotest.(check bool) "class a corruptible" true
          (AS.is_corruptible s (Pset.of_list [ 0; 1; 2; 3 ]));
        (* Any two servers are corruptible. *)
        for i = 0 to 8 do
          for j = 0 to 8 do
            if i <> j then
              Alcotest.(check bool) "pair corruptible" true
                (AS.is_corruptible s (Pset.of_list [ i; j ]))
          done
        done;
        (* Whole classes are corruptible. *)
        List.iter
          (fun cls ->
            Alcotest.(check bool) "class corruptible" true
              (AS.is_corruptible s (Pset.of_list cls)))
          Canonical_structures.example1_classes;
        (* Three servers covering two classes are qualified. *)
        Alcotest.(check bool) "3 servers 2 classes" true
          (AS.is_qualified s (Pset.of_list [ 0; 1; 4 ]));
        (* Three servers of class a only are NOT qualified. *)
        Alcotest.(check bool) "3 servers 1 class" false
          (AS.is_qualified s (Pset.of_list [ 0; 1; 2 ])));
    Alcotest.test_case "example1: maximal structure" `Quick (fun () ->
        (* A1* consists of {1,...,4} and all pairs not both of class a. *)
        let s = Canonical_structures.example1 () in
        let maxes = AS.maximal_adversary_sets s in
        let class_a = Pset.of_list [ 0; 1; 2; 3 ] in
        List.iter
          (fun m ->
            let ok =
              Pset.equal m class_a
              || (Pset.card m = 2 && not (Pset.subset m class_a))
            in
            Alcotest.(check bool)
              (Printf.sprintf "maximal set %s" (Pset.to_string m))
              true ok)
          maxes;
        (* count: pairs total C(9,2)=36, pairs inside class a C(4,2)=6,
           plus the class-a set itself: 36 - 6 + 1 = 31. *)
        Alcotest.(check int) "count" 31 (List.length maxes));
    Alcotest.test_case "example2: paper claims" `Quick (fun () ->
        let s = Canonical_structures.example2 () in
        Alcotest.(check bool) "q3" true (AS.satisfies_q3 s);
        (* One full site plus one full OS (7 servers) is corruptible. *)
        for row = 0 to 3 do
          for col = 0 to 3 do
            let bad = Canonical_structures.example2_site_plus_os ~row ~col in
            Alcotest.(check int) "pattern size" 7 (Pset.card bad);
            Alcotest.(check bool) "site+os corruptible" true
              (AS.is_corruptible s bad);
            (* The complement (9 servers, a 3x3 grid) is qualified:
               liveness and safety are maintained. *)
            Alcotest.(check bool) "survivors qualified" true
              (AS.is_qualified s (Pset.complement 16 bad))
          done
        done);
    Alcotest.test_case "example2: beats any threshold" `Quick (fun () ->
        (* n=16 requires t <= 5 for n > 3t: no threshold structure
           tolerates the 7-server site+OS pattern while satisfying Q^3. *)
        let bad = Canonical_structures.example2_site_plus_os ~row:0 ~col:0 in
        Alcotest.(check int) "7 corruptions" 7 (Pset.card bad);
        Alcotest.(check bool) "threshold t=5 is the max with q3" true
          (AS.satisfies_q3 (AS.threshold ~n:16 ~t:5));
        Alcotest.(check bool) "t=7 threshold fails q3" false
          (AS.satisfies_q3 (AS.threshold ~n:16 ~t:7));
        (* and with t=5 the 7-set is not tolerated *)
        Alcotest.(check bool) "7-set not corruptible at t=5" false
          (AS.is_corruptible (AS.threshold ~n:16 ~t:5) bad));
    Alcotest.test_case "example2: four servers may reconstruct" `Quick (fun () ->
        let s = Canonical_structures.example2 () in
        let cell r c = Canonical_structures.example2_party ~row:r ~col:c in
        let four = Pset.of_list [ cell 0 0; cell 0 1; cell 1 0; cell 1 1 ] in
        Alcotest.(check bool) "2x2 block qualified" true (AS.is_qualified s four);
        let row_only = Pset.of_list [ cell 0 0; cell 0 1; cell 0 2; cell 0 3 ] in
        Alcotest.(check bool) "full row unqualified" false
          (AS.is_qualified s row_only));
    Alcotest.test_case "sharing formulas compatible with trust assumption"
      `Quick (fun () ->
        List.iter
          (fun (name, s) ->
            Alcotest.(check bool) name true (AS.check_sharing_compatible s))
          [ ("threshold 4/1", AS.threshold ~n:4 ~t:1);
            ("threshold 16/5", AS.threshold ~n:16 ~t:5);
            ("example1", Canonical_structures.example1 ());
            ("example2", Canonical_structures.example2 ()) ]);
    Alcotest.test_case "uniform tolerance" `Quick (fun () ->
        Alcotest.(check int) "threshold t=2" 2
          (AS.max_uniform_tolerance (AS.threshold ~n:7 ~t:2));
        (* Example 1: any 2 servers corruptible, some 3-subsets are not. *)
        Alcotest.(check int) "example1" 2
          (AS.max_uniform_tolerance (Canonical_structures.example1 ()));
        (* Example 2: any pair lies in some row+column, some triples not. *)
        Alcotest.(check int) "example2" 2
          (AS.max_uniform_tolerance (Canonical_structures.example2 ())))
  ]

(* Random small monotone formula generator for LSSS property tests. *)
let gen_formula ~n =
  QCheck2.Gen.(
    let rec go depth =
      if depth = 0 then map (fun i -> F.leaf i) (int_bound (n - 1))
      else
        let* arity = int_range 2 4 in
        let* k = int_range 1 arity in
        let* children = list_size (return arity) (go (depth - 1)) in
        return (F.threshold k children)
    in
    let* d = int_range 1 3 in
    go d)

let lsss_tests =
  [ Alcotest.test_case "shamir via lsss" `Quick (fun () ->
        let rng = Prng.create ~seed:11 in
        let scheme = Lsss.build ~modulus:q17 (F.simple_threshold ~n:5 ~k:3) in
        let secret = B.of_int 123456 in
        let shares = Lsss.share scheme rng ~secret in
        Alcotest.(check int) "one leaf per party" 5 (List.length shares);
        (match Lsss.reconstruct scheme shares (Pset.of_list [ 0; 2; 4 ]) with
        | Some v -> Alcotest.(check bool) "recovers" true (B.equal v secret)
        | None -> Alcotest.fail "qualified set rejected");
        Alcotest.(check bool) "unqualified rejected" true
          (Lsss.reconstruct scheme shares (Pset.of_list [ 0; 2 ]) = None));
    Alcotest.test_case "example1 sharing roundtrip" `Quick (fun () ->
        let rng = Prng.create ~seed:12 in
        let s = Canonical_structures.example1 () in
        let scheme = Lsss.build ~modulus:q17 (AS.access_formula s) in
        let secret = B.of_int 987654321 in
        let shares = Lsss.share scheme rng ~secret in
        (* every qualified set reconstructs, every corruptible set fails *)
        Pset.iter_subsets 9 (fun set ->
            match Lsss.reconstruct scheme shares set with
            | Some v ->
              Alcotest.(check bool) "qualified" true (AS.is_qualified s set);
              Alcotest.(check bool) "value" true (B.equal v secret)
            | None ->
              Alcotest.(check bool) "unqualified" true (AS.is_corruptible s set)));
    Alcotest.test_case "example2 sharing site+os failure pattern" `Quick
      (fun () ->
        let rng = Prng.create ~seed:13 in
        let s = Canonical_structures.example2 () in
        let scheme = Lsss.build ~modulus:q17 (AS.access_formula s) in
        let secret = B.of_int 31337 in
        let shares = Lsss.share scheme rng ~secret in
        let bad = Canonical_structures.example2_site_plus_os ~row:1 ~col:2 in
        let survivors = Pset.complement 16 bad in
        (match Lsss.reconstruct scheme shares survivors with
        | Some v -> Alcotest.(check bool) "survivors recover" true (B.equal v secret)
        | None -> Alcotest.fail "survivors must be qualified");
        Alcotest.(check bool) "corrupted coalition learns nothing" true
          (Lsss.reconstruct scheme shares bad = None));
    qtest ~count:40 "lsss roundtrip on random formulas"
      QCheck2.Gen.(triple (gen_formula ~n:6) (int_bound 0x3F) int)
      (fun (f, set, seed) ->
        let rng = Prng.create ~seed in
        let scheme = Lsss.build ~modulus:q17 f in
        let secret = Prng.bignum_below rng q17 in
        let shares = Lsss.share scheme rng ~secret in
        match Lsss.reconstruct scheme shares set with
        | Some v -> F.eval f set && B.equal v secret
        | None -> not (F.eval f set));
    qtest ~count:40 "recombination is linear"
      QCheck2.Gen.(pair (gen_formula ~n:5) int)
      (fun (f, seed) ->
        (* Reconstructing the sum of two sharings with the same
           coefficients gives the sum of secrets. *)
        let rng = Prng.create ~seed in
        let scheme = Lsss.build ~modulus:q17 f in
        let s1 = Prng.bignum_below rng q17 and s2 = Prng.bignum_below rng q17 in
        let sh1 = Lsss.share scheme rng ~secret:s1 in
        let sh2 = Lsss.share scheme rng ~secret:s2 in
        let full = Pset.full 5 in
        match Lsss.recombination scheme full with
        | None -> F.eval f full = false
        | Some coeffs ->
          let value shares leaf =
            (List.find (fun (sh : Lsss.subshare) -> sh.leaf = leaf) shares).value
          in
          let combined =
            List.fold_left
              (fun acc (leaf, c) ->
                B.erem
                  (B.add acc
                     (B.mul c (B.add_mod (value sh1 leaf) (value sh2 leaf) q17)))
                  q17)
              B.zero coeffs
          in
          B.equal combined (B.add_mod s1 s2 q17))
  ]

let suite =
  ("sharing", pset_tests @ poly_tests @ formula_tests @ structure_tests @ lsss_tests)
