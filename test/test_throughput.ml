(* Throughput-layer regression harness: payload batching and round
   pipelining in the ABC hot path (PR 4).

   The batching/pipelining policy must never weaken the protocol: the
   (batch=1, window=1) default is payload-identical to the historical
   unbatched behaviour, an aggressive (batch=8, window=4) policy
   delivers the same payload set in a total order with strictly fewer
   agreement rounds, and a full pipeline window back-pressures instead
   of exhausting the simulator's step budget. *)

module AS = Adversary_structure

let th41 = AS.threshold ~n:4 ~t:1
let kr41 = lazy (Keyring.deal ~rsa_bits:192 ~seed:1000 th41)

(* Deploy an ABC instance per party, broadcast [payloads] round-robin,
   run to quiescence (or [until] all parties delivered), and return the
   per-party logs in delivery order plus the nodes and sim. *)
let run_abc ?policy ?obs ~seed ~payloads () =
  let keyring = Lazy.force kr41 in
  let sim = Sim.create ?obs ~size:(Link.frame_size (Abc.msg_size keyring)) ~n:4 ~seed () in
  let logs = Array.make 4 [] in
  let nodes =
    Stack.deploy_abc ?policy ~sim ~keyring ~tag:"tput"
      ~deliver:(fun me p -> logs.(me) <- p :: logs.(me))
      ()
  in
  List.iteri (fun i p -> Abc.broadcast nodes.(i mod 4) p) payloads;
  let want = List.length (List.sort_uniq compare payloads) in
  Sim.run sim
    ~until:(fun () -> Array.for_all (fun l -> List.length l >= want) logs);
  (Array.map List.rev logs, nodes, sim)

let payloads_n k = List.init k (fun i -> Printf.sprintf "p-%02d" i)

let tests =
  [ Alcotest.test_case "policy validation rejects non-positive fields"
      `Quick (fun () ->
        let keyring = Lazy.force kr41 in
        let sim = Sim.create ~size:(Link.frame_size (Abc.msg_size keyring)) ~n:4 ~seed:1 () in
        let bad policy =
          match
            Stack.deploy_abc ~policy ~sim ~keyring ~tag:"bad"
              ~deliver:(fun _ _ -> ())
              ()
          with
          | _ -> Alcotest.fail "invalid policy accepted"
          | exception Invalid_argument _ -> ()
        in
        bad { Abc.default_policy with max_batch_msgs = 0 };
        bad { Abc.default_policy with max_batch_bytes = 0 };
        bad { Abc.default_policy with window = 0 };
        bad { Abc.default_policy with linger = -1.0 });
    Alcotest.test_case
      "explicit (batch=1, window=1) is payload-identical to the default"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let payloads = payloads_n 6 in
            let reference, _, _ = run_abc ~seed ~payloads () in
            let explicit, _, _ =
              run_abc
                ~policy:
                  { Abc.default_policy with max_batch_msgs = 1; window = 1 }
                ~seed ~payloads ()
            in
            Array.iteri
              (fun i log ->
                Alcotest.(check (list string))
                  (Printf.sprintf "party %d log (seed %d)" i seed)
                  log explicit.(i))
              reference)
          [ 7; 8; 9 ]);
    Alcotest.test_case
      "(batch=8, window=4): same payload set, total order, fewer rounds"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let payloads = payloads_n 12 in
            let _plain_logs, plain_nodes, _ = run_abc ~seed ~payloads () in
            let batched_logs, batched_nodes, _ =
              run_abc
                ~policy:
                  { Abc.default_policy with max_batch_msgs = 8; window = 4 }
                ~seed ~payloads ()
            in
            let honest = Pset.of_list [ 0; 1; 2; 3 ] in
            List.iter
              (fun (v : Oracle.violation) ->
                Alcotest.failf "total-order violation (seed %d): %s" seed
                  (Oracle.violation_to_string v))
              (Oracle.total_order ~honest batched_logs);
            Array.iteri
              (fun i log ->
                Alcotest.(check (list string))
                  (Printf.sprintf "party %d delivered set (seed %d)" i seed)
                  (List.sort compare payloads)
                  (List.sort compare log))
              batched_logs;
            let max_round nodes =
              Array.fold_left
                (fun acc n -> max acc (Abc.current_round n))
                0 nodes
            in
            Alcotest.(check bool)
              (Printf.sprintf "batched rounds %d < unbatched rounds %d"
                 (max_round batched_nodes) (max_round plain_nodes))
              true
              (max_round batched_nodes < max_round plain_nodes))
          [ 30; 31 ]);
    Alcotest.test_case
      "full window back-pressures instead of running out of steps" `Quick
      (fun () ->
        (* Crash two of four servers: the big quorum is unreachable, so
           no round can complete.  The two survivors must open exactly
           [window] rounds, park the remaining payloads in the backlog,
           and go quiescent — the old behaviour was to spin until
           [Sim.Out_of_steps]. *)
        let keyring = Lazy.force kr41 in
        let obs = Obs.create () in
        let sim = Sim.create ~obs ~size:(Link.frame_size (Abc.msg_size keyring)) ~n:4 ~seed:5 () in
        let nodes =
          Stack.deploy_abc
            ~policy:{ Abc.default_policy with max_batch_msgs = 1; window = 2 }
            ~sim ~keyring ~tag:"bp"
            ~deliver:(fun _ _ -> ())
            ()
        in
        Sim.crash sim 2;
        Sim.crash sim 3;
        List.iter (fun p -> Abc.broadcast nodes.(0) p) (payloads_n 10);
        (* quiescence, not Out_of_steps: the exception would fail the test *)
        Sim.run sim;
        Alcotest.(check int) "window filled" 2 (Abc.in_flight nodes.(0));
        Alcotest.(check int) "backlog parked" 8 (Abc.backlog nodes.(0));
        let bp =
          match
            Obs_registry.find (Obs.snapshot obs)
              ~labels:[ ("layer", "abc") ]
              "abc_backpressure"
          with
          | Some (Obs_registry.Vcounter c) -> c
          | _ -> 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "abc_backpressure counted (%d)" bp)
          true (bp > 0));
    Alcotest.test_case "stall probe feeds Out_of_steps diagnostics" `Quick
      (fun () ->
        let keyring = Lazy.force kr41 in
        let sim = Sim.create ~size:(Link.frame_size (Abc.msg_size keyring)) ~n:4 ~seed:6 () in
        let nodes =
          Stack.deploy_abc
            ~policy:{ Abc.default_policy with max_batch_msgs = 4; window = 2 }
            ~sim ~keyring ~tag:"probe"
            ~deliver:(fun _ _ -> ())
            ()
        in
        List.iter (fun p -> Abc.broadcast nodes.(0) p) (payloads_n 8);
        (match Sim.run sim ~max_steps:120 with
        | () -> Alcotest.fail "expected Out_of_steps mid-protocol"
        | exception Sim.Out_of_steps { detail; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "detail names the abc layer: %S" detail)
            true
            (String.length detail >= 3 && String.sub detail 0 3 = "abc")));
    Alcotest.test_case "scabc delivers everything under a batched policy"
      `Quick (fun () ->
        let keyring = Lazy.force kr41 in
        let sim =
          Sim.create ~size:(Link.frame_size (Scabc.msg_size keyring)) ~n:4 ~seed:11 ()
        in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy_scabc
            ~policy:{ Abc.default_policy with max_batch_msgs = 4; window = 2 }
            ~sim ~keyring ~tag:"sc-tput"
            ~deliver:(fun me ~label:_ p -> logs.(me) <- p :: logs.(me))
            ()
        in
        let payloads = payloads_n 6 in
        let rng = Prng.create ~seed:79 in
        List.iteri
          (fun i p ->
            let ct =
              Scabc.encrypt_request keyring rng
                ~label:(Printf.sprintf "c%d" i) p
            in
            Scabc.broadcast nodes.(i mod 4) ct)
          payloads;
        Sim.run sim
          ~until:(fun () -> Array.for_all (fun l -> List.length l >= 6) logs);
        Array.iteri
          (fun i log ->
            Alcotest.(check (list string))
              (Printf.sprintf "party %d order matches party 0" i)
              (List.rev logs.(0)) (List.rev log);
            Alcotest.(check (list string))
              (Printf.sprintf "party %d delivered set" i)
              (List.sort compare payloads)
              (List.sort compare log))
          logs);
    Alcotest.test_case
      "optimistic fallback inherits the batched policy and delivers" `Quick
      (fun () ->
        let keyring = Lazy.force kr41 in
        let sim = Sim.create ~n:4 ~seed:12 () in
        let logs = Array.make 4 [] in
        let nodes =
          Stack.deploy ~sim ~keyring
            ~make:(fun me io ->
              Optimistic_abc.create ~io ~tag:"opt-tput" ~sequencer:0
                ~patience:60
                ~set_timer:(fun ~delay cb -> Sim.set_timer sim me ~delay cb)
                ~timeout:800.0
                ~abc_policy:
                  { Abc.default_policy with max_batch_msgs = 4; window = 2 }
                ~deliver:(fun p -> logs.(me) <- p :: logs.(me))
                ())
            ~handle:Optimistic_abc.handle ()
        in
        Sim.crash sim 0;
        let payloads = payloads_n 4 in
        List.iteri
          (fun i p -> Optimistic_abc.broadcast nodes.(1 + (i mod 3)) p)
          payloads;
        let honest = [ 1; 2; 3 ] in
        Sim.run sim
          ~until:(fun () ->
            List.for_all (fun i -> List.length logs.(i) >= 4) honest);
        Sim.run sim;
        List.iter
          (fun i ->
            Alcotest.(check bool) "switched to fallback" true
              (Optimistic_abc.mode nodes.(i) = Optimistic_abc.Fallback);
            Alcotest.(check (list string))
              (Printf.sprintf "party %d order matches party 1" i)
              (List.rev logs.(1)) (List.rev logs.(i));
            Alcotest.(check (list string))
              (Printf.sprintf "party %d delivered set" i)
              (List.sort compare payloads)
              (List.sort compare logs.(i)))
          honest)
  ]

let suite = ("throughput", tests)
